#include "service/coordinator.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/result_io.hh"
#include "batch/runner.hh"
#include "checkpoint/livepoint.hh"
#include "service/server.hh"
#include "workload/endian.hh"

namespace delorean::service
{

namespace le = workload::le;

namespace
{

/**
 * Expired leases kept around so a zombie's COMPLETE can still be
 * interpreted (stored if it wins the first write, discarded
 * otherwise). Beyond this, a zombie is acked blind — harmless, the
 * re-lease re-executes.
 */
constexpr std::size_t max_retained_expired = 1024;

/** Split one header line into its space-separated k=v tokens. */
std::vector<std::string>
headerTokens(const std::string &body)
{
    const std::size_t eol = body.find('\n');
    const std::string line =
        eol == std::string::npos ? body : body.substr(0, eol);
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

/** The value of the first "<key>=" token, or nullopt. */
std::optional<std::string>
tokenValue(const std::vector<std::string> &tokens,
           const std::string &key)
{
    const std::string prefix = key + "=";
    for (const auto &token : tokens)
        if (token.rfind(prefix, 0) == 0)
            return token.substr(prefix.size());
    return std::nullopt;
}

/** Parse a "stream=<id>" token (optional trailing newline). */
std::uint64_t
parseStreamId(std::string text, const char *what)
{
    if (!text.empty() && text.back() == '\n')
        text.pop_back();
    if (text.rfind("stream=", 0) != 0)
        throw ServiceError(std::string(what) +
                           ": expected stream=<id>, got '" + text + "'");
    try {
        return batch::parseCount(text.substr(sizeof("stream=") - 1));
    } catch (const batch::BatchError &e) {
        throw ServiceError(std::string(what) + ": " + e.what());
    }
}

} // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)), cache_(config_.cache_dir)
{
    if (config_.socket_path.empty())
        throw ServiceError("coordinator: no socket path");
    if (config_.lease_ms == 0)
        throw ServiceError("coordinator: lease period must be non-zero");
    if (config_.close_wait_ms == 0)
        throw ServiceError(
            "coordinator: close wait period must be non-zero");
}

Coordinator::~Coordinator()
{
    for (const auto &[id, stream] : streams_)
        removeStreamArtifacts(stream);
}

void
Coordinator::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        shutdown_ = true;
    }
    shutdown_cv_.notify_all();
}

void
Coordinator::run()
{
    SocketServer server(config_.socket_path,
                        [this](const protocol::Request &request,
                               std::uint64_t client) {
                            return handle(request, client);
                        });
    server.start();
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] listening on %s (cache %s, "
                     "lease %u ms)\n",
                     config_.socket_path.c_str(), cache_.dir().c_str(),
                     config_.lease_ms);
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [&] { return shutdown_; });
    // ~SocketServer stops accepting and joins connections.
}

Coordinator::Counters
Coordinator::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

protocol::Reply
Coordinator::handle(const protocol::Request &request,
                    std::uint64_t client)
{
    switch (request.op) {
      case protocol::Opcode::Submit:
        return handleSubmit(request.body, client);
      case protocol::Opcode::Status:
        return handleStatus(request.body);
      case protocol::Opcode::Result:
        return handleResult(request.body);
      case protocol::Opcode::Stats:
        return handleStats();
      case protocol::Opcode::Lease:
        return handleLease(request.body);
      case protocol::Opcode::Renew:
        return handleRenew(request.body);
      case protocol::Opcode::Complete:
        return handleComplete(request.body);
      case protocol::Opcode::Shutdown: {
        protocol::Reply reply{true, "ok\n", nullptr};
        reply.after_send = [this] { requestShutdown(); };
        return reply;
      }
      case protocol::Opcode::ResultPart:
      case protocol::Opcode::ResultEnd:
        // readRequest() rejects these standalone; belt and braces.
        return protocol::Reply::error(
            "continuation frame outside a COMPLETE stream");
      case protocol::Opcode::StreamOpen:
        return handleStreamOpen(request.body);
      case protocol::Opcode::StreamAppend:
        return handleStreamAppend(request.body);
      case protocol::Opcode::StreamClose:
        return handleStreamClose(request.body);
      case protocol::Opcode::StreamLease:
        return handleStreamLease(request.body);
      case protocol::Opcode::StreamHandoff:
        return handleStreamHandoff(request.body);
    }
    return protocol::Reply::error("unhandled opcode");
}

namespace
{

/** Ready-heap order: highest priority, then oldest, first. */
struct UnitBelow
{
    template <typename Unit>
    bool
    operator()(const Unit &a, const Unit &b) const
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq > b.seq;
    }
};

} // namespace

void
Coordinator::enqueueUnitLocked(Unit unit)
{
    ready_.push_back(std::move(unit));
    std::push_heap(ready_.begin(), ready_.end(), UnitBelow{});
    counters_.units_ready = ready_.size();
}

protocol::Reply
Coordinator::handleSubmit(const std::string &body,
                          std::uint64_t client)
{
    if (body.size() < 4)
        throw ServiceError("SUBMIT: missing priority prefix");
    const std::uint32_t raw_priority = le::getU32(
        reinterpret_cast<const std::uint8_t *>(body.data()));
    const int priority = int(std::min(raw_priority, 1000u));
    const std::string text = body.substr(4);

    const auto plan =
        batch::BatchPlan::fromManifestText(text, "submit");

    std::lock_guard<std::mutex> lock(mutex_);

    if (config_.submit_quota != 0 &&
        jobs_by_client_[client] >= config_.submit_quota) {
        ++counters_.quota_rejections;
        return protocol::Reply::error(
            "submit quota exceeded (" +
            std::to_string(config_.submit_quota) +
            " jobs in flight for this connection); retry when one "
            "completes");
    }

    // Classify every cell before mutating anything, so a backlog
    // rejection leaves no half-registered job behind.
    enum class Fate
    {
        Cached,  //!< already in the result cache
        Attach,  //!< key pending for an earlier job (or earlier cell)
        Fresh,   //!< needs a new work unit
    };
    std::vector<Fate> fates(plan.cells().size(), Fate::Fresh);
    std::vector<const batch::BatchCell *> fresh;
    std::unordered_set<std::string> fresh_hexes;
    for (const auto &cell : plan.cells()) {
        const std::string hex = cell.key.hex();
        if (waiters_.count(hex) || fresh_hexes.count(hex)) {
            fates[cell.index] = Fate::Attach;
        } else if (cache_.load(cell.key)) {
            fates[cell.index] = Fate::Cached;
        } else {
            fresh_hexes.insert(hex);
            fresh.push_back(&cell);
        }
    }
    const auto unit_indices = batch::planWorkUnits(fresh);
    if (ready_.size() + unit_indices.size() > config_.max_ready_units) {
        ++counters_.quota_rejections;
        return protocol::Reply::error(
            "coordinator backlog full (" +
            std::to_string(ready_.size()) +
            " units awaiting workers); retry later");
    }

    const std::uint64_t id = next_job_++;
    JobRec record;
    record.status.id = id;
    record.status.name = "socket";
    record.status.source = JobSource::Socket;
    record.status.priority = priority;
    record.status.cells = plan.cells().size();
    record.manifest = text;
    record.client = client;
    ++counters_.jobs_submitted;
    counters_.cells_total += plan.cells().size();
    ++jobs_by_client_[client];
    auto &job = jobs_.emplace(id, std::move(record)).first->second;
    job_order_.push_back(id);

    for (const auto &cell : plan.cells()) {
        const std::string hex = cell.key.hex();
        switch (fates[cell.index]) {
          case Fate::Cached:
            ++job.status.done;
            ++job.cached;
            ++counters_.cells_cached;
            break;
          case Fate::Attach:
            waiters_[hex].push_back({id, cell.index});
            ++counters_.cells_deduped;
            break;
          case Fate::Fresh:
            waiters_[hex].push_back({id, cell.index});
            break;
        }
    }
    for (const auto &members : unit_indices) {
        Unit unit;
        unit.job = id;
        unit.priority = priority;
        unit.seq = next_seq_++;
        for (const std::size_t j : members) {
            unit.indices.push_back(fresh[j]->index);
            unit.keys.push_back(fresh[j]->key);
        }
        enqueueUnitLocked(std::move(unit));
    }
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] submit -> job %llu (%zu cells, "
                     "%zu units)\n",
                     (unsigned long long)id, plan.cells().size(),
                     unit_indices.size());

    if (job.status.complete())
        finishJobLocked(job);

    std::ostringstream os;
    os << "job=" << id << " cells=" << plan.cells().size() << "\n";
    return protocol::Reply::success(os.str());
}

protocol::Reply
Coordinator::handleLease(const std::string &body)
{
    const auto tokens = headerTokens(body);
    const std::string worker =
        tokenValue(tokens, "worker").value_or("");

    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked(Clock::now());

    while (!ready_.empty()) {
        std::pop_heap(ready_.begin(), ready_.end(), UnitBelow{});
        Unit unit = std::move(ready_.back());
        ready_.pop_back();
        counters_.units_ready = ready_.size();

        // Prune members resolved since the unit was queued (a zombie
        // COMPLETE that won the first write, or a failure fan-out).
        Unit live;
        live.job = unit.job;
        live.priority = unit.priority;
        live.seq = unit.seq;
        for (std::size_t i = 0; i < unit.keys.size(); ++i) {
            if (!waiters_.count(unit.keys[i].hex()))
                continue;
            live.indices.push_back(unit.indices[i]);
            live.keys.push_back(unit.keys[i]);
        }
        if (live.indices.empty())
            continue; // fully resolved while queued; nothing to lease

        const auto jt = jobs_.find(live.job);
        if (jt == jobs_.end())
            continue; // unreachable: waiters keep the job alive

        Lease lease;
        lease.id = next_lease_++;
        lease.unit = std::move(live);
        lease.worker = worker;
        lease.deadline =
            Clock::now() + std::chrono::milliseconds(config_.lease_ms);
        deadlines_.emplace(lease.deadline, lease.id);
        ++counters_.leases_granted;
        ++counters_.units_leased;

        std::ostringstream os;
        os << "lease=" << lease.id
           << " deadline-ms=" << config_.lease_ms
           << " job=" << lease.unit.job << " cells=";
        for (std::size_t i = 0; i < lease.unit.indices.size(); ++i)
            os << (i ? "," : "") << lease.unit.indices[i];
        os << " keys=";
        for (std::size_t i = 0; i < lease.unit.keys.size(); ++i)
            os << (i ? "," : "") << lease.unit.keys[i].hex();
        os << "\n" << jt->second.manifest;
        if (config_.verbose)
            std::fprintf(stderr,
                         "[coordinator] lease %llu -> %s (job %llu, "
                         "%zu cells)\n",
                         (unsigned long long)lease.id,
                         worker.empty() ? "worker" : worker.c_str(),
                         (unsigned long long)lease.unit.job,
                         lease.unit.indices.size());
        const std::uint64_t lease_id = lease.id;
        leases_.emplace(lease_id, std::move(lease));
        return protocol::Reply::success(os.str());
    }
    return protocol::Reply::success("none\n");
}

protocol::Reply
Coordinator::handleRenew(const std::string &body)
{
    const auto tokens = headerTokens(body);
    const auto id_text = tokenValue(tokens, "lease");
    if (!id_text)
        return protocol::Reply::error("RENEW: missing lease id");
    const std::uint64_t id = batch::parseCount(*id_text);

    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked(Clock::now());
    const auto it = leases_.find(id);
    if (it == leases_.end() || it->second.expired)
        return protocol::Reply::error("RENEW: lease " + *id_text +
                                      " is not active");
    it->second.deadline =
        Clock::now() + std::chrono::milliseconds(config_.lease_ms);
    deadlines_.emplace(it->second.deadline, id);
    ++counters_.leases_renewed;
    return protocol::Reply::success(
        "deadline-ms=" + std::to_string(config_.lease_ms) + "\n");
}

protocol::Reply
Coordinator::handleComplete(const std::string &body)
{
    const auto tokens = headerTokens(body);
    const auto id_text = tokenValue(tokens, "lease");
    const auto status = tokenValue(tokens, "status");
    if (!id_text || !status ||
        (*status != "ok" && *status != "error"))
        return protocol::Reply::error(
            "COMPLETE: malformed header (want lease=<id> "
            "status=ok|error)");
    const std::uint64_t id = batch::parseCount(*id_text);
    const std::size_t eol = body.find('\n');
    const std::string payload =
        eol == std::string::npos ? "" : body.substr(eol + 1);

    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked(Clock::now());

    const auto it = leases_.find(id);
    if (it == leases_.end()) {
        // A zombie so stale its lease record is gone. Ack: the
        // worker did nothing wrong, and the work was re-run anyway.
        return protocol::Reply::success("stored=0 discarded=0\n");
    }
    if (it->second.kind != LeaseKind::Cell)
        return protocol::Reply::error(
            "COMPLETE: lease " + *id_text +
            " is a stream lease; use STREAM-HANDOFF");
    Lease lease = std::move(it->second);
    leases_.erase(it);
    if (!lease.expired)
        --counters_.units_leased;

    std::uint64_t stored = 0, discarded = 0;
    if (*status == "ok") {
        // Parse every record up front: a malformed payload must not
        // resolve a prefix of the unit and then fail the rest.
        std::vector<sampling::MethodResult> results;
        try {
            std::istringstream is(payload, std::ios::binary);
            for (std::size_t i = 0; i < lease.unit.keys.size(); ++i)
                results.push_back(
                    batch::readMethodResult(is, /*expect_end=*/false));
            if (is.peek() != std::char_traits<char>::eof())
                throw batch::BatchError(
                    "trailing bytes after the last record");
        } catch (const batch::BatchError &e) {
            if (!lease.expired) {
                for (const auto &key : lease.unit.keys)
                    resolveKeyLocked(
                        key.hex(), false,
                        std::string("worker returned a malformed "
                                    "result payload: ") +
                            e.what(),
                        false);
            }
            return protocol::Reply::error(
                std::string("COMPLETE: malformed payload: ") +
                e.what());
        }
        for (std::size_t i = 0; i < lease.unit.keys.size(); ++i) {
            const std::string hex = lease.unit.keys[i].hex();
            if (!waiters_.count(hex)) {
                // First write won already: ack and discard (the
                // zombie-duplicate contract).
                ++discarded;
                ++counters_.results_discarded;
                continue;
            }
            cache_.store(lease.unit.keys[i], results[i]);
            ++stored;
            ++counters_.results_stored;
            resolveKeyLocked(hex, true, "", true);
        }
    } else {
        // Execution failed on the worker. Only an *active* lease may
        // fail cells — a zombie's error must not poison a re-lease
        // that might still succeed.
        if (!lease.expired) {
            for (const auto &key : lease.unit.keys) {
                const std::string hex = key.hex();
                if (waiters_.count(hex))
                    resolveKeyLocked(hex, false, payload, false);
            }
        } else {
            discarded += lease.unit.keys.size();
            counters_.results_discarded += lease.unit.keys.size();
        }
    }
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] complete lease %llu: %s "
                     "stored=%llu discarded=%llu\n",
                     (unsigned long long)id, status->c_str(),
                     (unsigned long long)stored,
                     (unsigned long long)discarded);
    return protocol::Reply::success(
        "stored=" + std::to_string(stored) +
        " discarded=" + std::to_string(discarded) + "\n");
}

void
Coordinator::sweepExpiredLocked(Clock::time_point now)
{
    while (!deadlines_.empty() && deadlines_.top().first <= now) {
        const auto [deadline, id] = deadlines_.top();
        deadlines_.pop();
        const auto it = leases_.find(id);
        if (it == leases_.end() || it->second.expired ||
            it->second.deadline != deadline)
            continue; // completed, already expired, or renewed
        Lease &lease = it->second;
        lease.expired = true;
        ++counters_.leases_expired;
        if (config_.verbose)
            std::fprintf(stderr,
                         "[coordinator] lease %llu expired; "
                         "re-queueing\n",
                         (unsigned long long)id);

        if (lease.kind == LeaseKind::Stream) {
            // The stream becomes leasable again from its committed
            // prefix. The record stays (bounded) so the zombie's
            // eventual handoff is understood — and can even win the
            // commit if it strictly extends the prefix.
            const auto st = streams_.find(lease.stream);
            if (st != streams_.end() && st->second.leased &&
                st->second.lease_id == id)
                st->second.leased = false;
            retainExpiredLocked(id);
            continue;
        }
        --counters_.units_leased;

        // Re-queue what is still unresolved; the lease record stays
        // (bounded) so the zombie's eventual COMPLETE is understood.
        Unit retry;
        retry.job = lease.unit.job;
        retry.priority = lease.unit.priority;
        retry.seq = lease.unit.seq;
        for (std::size_t i = 0; i < lease.unit.keys.size(); ++i) {
            if (!waiters_.count(lease.unit.keys[i].hex()))
                continue;
            retry.indices.push_back(lease.unit.indices[i]);
            retry.keys.push_back(lease.unit.keys[i]);
        }
        if (!retry.indices.empty())
            enqueueUnitLocked(std::move(retry));

        retainExpiredLocked(id);
    }
}

void
Coordinator::retainExpiredLocked(std::uint64_t id)
{
    expired_order_.push_back(id);
    while (expired_order_.size() > max_retained_expired) {
        const std::uint64_t old = expired_order_.front();
        expired_order_.pop_front();
        const auto ot = leases_.find(old);
        if (ot != leases_.end() && ot->second.expired)
            leases_.erase(ot);
    }
}

void
Coordinator::resolveKeyLocked(const std::string &hex, bool ok,
                              const std::string &error, bool executed)
{
    const auto it = waiters_.find(hex);
    if (it == waiters_.end())
        return;
    const std::vector<CellRef> waiting = std::move(it->second);
    waiters_.erase(it);

    bool first = true;
    for (const CellRef &ref : waiting) {
        const auto jt = jobs_.find(ref.job);
        if (jt == jobs_.end())
            continue;
        JobRec &job = jt->second;
        ++job.status.done;
        if (!ok) {
            ++job.status.failed;
            if (job.status.first_error.empty())
                job.status.first_error = error;
        } else if (executed && first) {
            // Only the first waiter "owns" the execution; everyone
            // else got the cell cache-hit-equivalent.
            ++job.executed;
        } else {
            ++job.cached;
        }
        first = false;
        if (job.status.complete())
            finishJobLocked(job);
    }
}

void
Coordinator::finishJobLocked(JobRec &job)
{
    ++counters_.jobs_completed;
    if (job.status.failed > 0)
        ++counters_.jobs_failed;
    const auto ct = jobs_by_client_.find(job.client);
    if (ct != jobs_by_client_.end() && ct->second > 0 &&
        --ct->second == 0)
        jobs_by_client_.erase(ct);
    cache_.recordRun(job.executed, job.cached);
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] job %llu %s: executed=%llu "
                     "cached=%llu failed=%zu\n",
                     (unsigned long long)job.status.id,
                     job.status.state(),
                     (unsigned long long)job.executed,
                     (unsigned long long)job.cached,
                     job.status.failed);

    finished_order_.push_back(job.status.id);
    while (finished_order_.size() > JobQueue::max_finished_jobs) {
        jobs_.erase(finished_order_.front());
        finished_order_.pop_front();
    }
    if (job_order_.size() > 2 * jobs_.size() + 16) {
        std::deque<std::uint64_t> kept;
        for (const std::uint64_t id : job_order_)
            if (jobs_.count(id))
                kept.push_back(id);
        job_order_ = std::move(kept);
    }
}

protocol::Reply
Coordinator::handleStatus(const std::string &body)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (body.rfind("stream=", 0) == 0) {
        const std::uint64_t id = parseStreamId(body, "STATUS");
        const auto it = streams_.find(id);
        if (it == streams_.end())
            return protocol::Reply::error("unknown stream " +
                                          std::to_string(id));
        const FleetStream &s = it->second;
        return protocol::Reply::success(streamStatusLine(
            id, s.spool->records(), s.committed,
            s.config.schedule.num_regions, s.est_cpi, s.ci_error,
            s.mpki, s.spool->complete(), s.mrc));
    }
    if (!body.empty()) {
        const std::uint64_t id = batch::parseCount(body);
        const auto it = jobs_.find(id);
        if (it == jobs_.end())
            return protocol::Reply::error("unknown job " + body);
        return protocol::Reply::success(
            jobStatusLine(it->second.status));
    }
    std::ostringstream os;
    const Counters &c = counters_;
    os << "jobs=" << c.jobs_submitted
       << " completed=" << c.jobs_completed
       << " job_failures=" << c.jobs_failed
       << " units_ready=" << c.units_ready
       << " units_leased=" << c.units_leased
       << " leases_granted=" << c.leases_granted
       << " leases_expired=" << c.leases_expired
       << " cells_total=" << c.cells_total
       << " cells_cached=" << c.cells_cached
       << " cells_deduped=" << c.cells_deduped
       << " streams=" << c.streams_opened
       << " stream_leases=" << c.stream_leases
       << " stream_windows=" << c.stream_windows
       << " streams_finished=" << c.streams_finished
       << " streams_failed=" << c.streams_failed << "\n";
    for (const std::uint64_t id : job_order_) {
        const auto it = jobs_.find(id);
        if (it != jobs_.end())
            os << jobStatusLine(it->second.status);
    }
    return protocol::Reply::success(os.str());
}

protocol::Reply
Coordinator::handleResult(const std::string &body)
{
    const batch::CacheKey key = batch::CacheKey::fromHex(body);
    auto bytes = cache_.loadBytes(key);
    if (!bytes)
        return protocol::Reply::error("no cached result for key " +
                                      body);
    return protocol::Reply::success(std::move(*bytes));
}

protocol::Reply
Coordinator::handleStats()
{
    const auto stats = cache_.stats();
    std::lock_guard<std::mutex> lock(mutex_);
    const Counters &c = counters_;
    std::ostringstream os;
    os << "last_run_executed=" << stats.last_run_executed
       << " last_run_cached=" << stats.last_run_cached
       << " total_executed=" << stats.total_executed
       << " total_cached=" << stats.total_cached << "\n"
       << "jobs=" << c.jobs_submitted
       << " completed=" << c.jobs_completed
       << " job_failures=" << c.jobs_failed
       << " cells_total=" << c.cells_total
       << " cells_cached=" << c.cells_cached
       << " cells_deduped=" << c.cells_deduped
       << " units_ready=" << c.units_ready
       << " units_leased=" << c.units_leased
       << " leases_granted=" << c.leases_granted
       << " leases_renewed=" << c.leases_renewed
       << " leases_expired=" << c.leases_expired
       << " results_stored=" << c.results_stored
       << " results_discarded=" << c.results_discarded
       << " quota_rejections=" << c.quota_rejections
       << " streams=" << c.streams_opened
       << " stream_leases=" << c.stream_leases
       << " stream_handoffs=" << c.stream_handoffs
       << " stream_windows=" << c.stream_windows
       << " streams_finished=" << c.streams_finished
       << " streams_failed=" << c.streams_failed << "\n";
    return protocol::Reply::success(os.str());
}

void
Coordinator::removeStreamArtifacts(const FleetStream &stream)
{
    // The committed prefix plus any orphaned worker prefixes share
    // the "<spool>.lvp" name prefix; the spool file itself is removed
    // by ~TraceSpool.
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path spool(stream.spool->path());
    const std::string stem = spool.filename().string() + ".lvp";
    for (const auto &entry : fs::directory_iterator(
             spool.parent_path(), ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(stem, 0) == 0)
            fs::remove(entry.path(), ec);
    }
}

protocol::Reply
Coordinator::handleStreamOpen(const std::string &body)
{
    if (body.rfind("tail=", 0) == 0)
        return protocol::Reply::error(
            "STREAM-OPEN: tail following reads a local file; it needs "
            "a batch service ('batch_service serve'), not a fleet "
            "coordinator");

    const std::string dir = cache_.dir() + "/fleet-streams";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throw ServiceError("STREAM-OPEN: cannot create spool "
                           "directory '" + dir + "': " + ec.message());

    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = ++next_stream_;
    FleetStream stream;
    stream.id = id;
    stream.directives = body;
    stream.config = streamConfig(id, body, 1);
    stream.spool = std::make_unique<TraceSpool>(
        id, dir + "/" + std::to_string(id) + ".dlt",
        stream.config.schedule.totalInstructions());
    ++counters_.streams_opened;
    streams_.emplace(id, std::move(stream));
    if (config_.verbose)
        std::fprintf(stderr, "[coordinator] stream %llu opened\n",
                     (unsigned long long)id);
    return protocol::Reply::success("stream=" + std::to_string(id) +
                                    "\n");
}

protocol::Reply
Coordinator::handleStreamAppend(const std::string &body)
{
    const std::size_t eol = body.find('\n');
    if (eol == std::string::npos)
        throw ServiceError(
            "STREAM-APPEND: missing stream=<id> header line");
    const std::uint64_t id =
        parseStreamId(body.substr(0, eol), "STREAM-APPEND");

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(id);
    if (it == streams_.end())
        return protocol::Reply::error("unknown stream " +
                                      std::to_string(id));
    FleetStream &stream = it->second;
    if (stream.failed) {
        // A worker failed the stream since the last append; surface
        // that now and reclaim the stream.
        const std::string error = stream.error;
        removeStreamArtifacts(stream);
        streams_.erase(it);
        streams_cv_.notify_all();
        return protocol::Reply::error("stream " + std::to_string(id) +
                                      ": " + error);
    }
    if (stream.closing)
        return protocol::Reply::error("stream " + std::to_string(id) +
                                      " is closing");
    try {
        stream.spool->append(body.substr(eol + 1));
    } catch (const ServiceError &) {
        // Malformed header, overflow, spool I/O: the stream's state
        // is unrecoverable. Drop it so its spool is reclaimed; an
        // outstanding lease's handoff finds the stream gone and is
        // acked-and-discarded.
        removeStreamArtifacts(stream);
        streams_.erase(it);
        streams_cv_.notify_all();
        throw;
    }

    std::ostringstream os;
    os << "received=" << stream.spool->received()
       << " records=" << stream.spool->records()
       << " windows_fed=" << stream.committed << "\n";
    return protocol::Reply::success(os.str());
}

protocol::Reply
Coordinator::handleStreamClose(const std::string &body)
{
    const std::uint64_t id = parseStreamId(body, "STREAM-CLOSE");

    std::unique_lock<std::mutex> lock(mutex_);
    {
        const auto it = streams_.find(id);
        if (it == streams_.end())
            return protocol::Reply::error("unknown stream " +
                                          std::to_string(id));
        // Incomplete bytes are the client's error and leave the
        // stream open, exactly like the local service.
        it->second.spool->requireComplete();
        it->second.spool->flush();
        it->second.closing = true;
    }

    // The finish lease is now grantable; wait for its handoff.
    const bool settled = streams_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.close_wait_ms), [&] {
            const auto it = streams_.find(id);
            return it == streams_.end() || it->second.finished ||
                   it->second.failed;
        });
    const auto it = streams_.find(id);
    if (it == streams_.end())
        return protocol::Reply::error("stream " + std::to_string(id) +
                                      " was discarded during close");
    if (!settled)
        return protocol::Reply::error(
            "STREAM-CLOSE: timed out after " +
            std::to_string(config_.close_wait_ms) +
            " ms waiting for the fleet to finish stream " +
            std::to_string(id) + "; retry");
    if (it->second.failed) {
        auto node = streams_.extract(it);
        lock.unlock();
        removeStreamArtifacts(node.mapped());
        return protocol::Reply::error("stream " + std::to_string(id) +
                                      ": " + node.mapped().error);
    }

    // Finished: the stream is ours now. Compute the content key
    // outside the lock — it digests the whole spool, and the spool is
    // byte-identical to the trace the client streamed, so the key
    // equals an offline run's key for the original file.
    auto node = streams_.extract(it);
    lock.unlock();
    FleetStream &stream = node.mapped();
    std::string manifest = stream.directives;
    if (!manifest.empty() && manifest.back() != '\n')
        manifest += '\n';
    manifest += "workload file:" + stream.spool->path() + "\n";
    batch::CacheKey key;
    try {
        const batch::BatchPlan plan = batch::BatchPlan::fromManifestText(
            manifest, "stream-" + std::to_string(id));
        key = plan.cells().at(0).key;
    } catch (const batch::BatchError &e) {
        removeStreamArtifacts(stream);
        throw ServiceError("stream " + std::to_string(id) + ": " +
                           e.what());
    }
    cache_.store(key, stream.result);
    removeStreamArtifacts(stream);
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] stream %llu closed -> key %s "
                     "(%u windows)\n",
                     (unsigned long long)id, key.hex().c_str(),
                     stream.windows);
    return protocol::Reply::success(
        "key=" + key.hex() +
        " windows=" + std::to_string(stream.windows) + "\n");
}

protocol::Reply
Coordinator::handleStreamLease(const std::string &body)
{
    const auto tokens = headerTokens(body);
    const std::string worker =
        tokenValue(tokens, "worker").value_or("");

    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked(Clock::now());

    for (auto &[sid, stream] : streams_) {
        if (stream.leased || stream.finished || stream.failed)
            continue;
        if (!stream.spool->headerDone())
            continue;
        const auto &sched = stream.config.schedule;
        const unsigned feedable = unsigned(std::min<std::uint64_t>(
            sched.num_regions, stream.spool->records() / sched.spacing));
        const bool finish = stream.closing && stream.spool->complete();
        if (!finish && feedable <= stream.committed)
            continue;
        const unsigned to = finish ? sched.num_regions : feedable;

        stream.spool->flush();
        Lease lease;
        lease.id = next_lease_++;
        lease.kind = LeaseKind::Stream;
        lease.worker = worker;
        lease.stream = sid;
        lease.from = stream.committed;
        lease.to = to;
        lease.finish = finish;
        lease.deadline =
            Clock::now() + std::chrono::milliseconds(config_.lease_ms);
        deadlines_.emplace(lease.deadline, lease.id);
        stream.leased = true;
        stream.lease_id = lease.id;
        ++counters_.stream_leases;

        std::ostringstream os;
        os << "lease=" << lease.id
           << " deadline-ms=" << config_.lease_ms << " stream=" << sid
           << " from=" << lease.from << " to=" << lease.to
           << " finish=" << (finish ? 1 : 0)
           << " records=" << stream.spool->records()
           << " trace=" << stream.spool->path() << " prefix="
           << (stream.committed > 0 ? stream.prefix_path : "-") << "\n"
           << stream.directives;
        if (config_.verbose)
            std::fprintf(stderr,
                         "[coordinator] stream lease %llu -> %s "
                         "(stream %llu, windows [%u, %u)%s)\n",
                         (unsigned long long)lease.id,
                         worker.empty() ? "worker" : worker.c_str(),
                         (unsigned long long)sid, lease.from, lease.to,
                         finish ? ", finish" : "");
        const std::uint64_t lease_id = lease.id;
        leases_.emplace(lease_id, std::move(lease));
        return protocol::Reply::success(os.str());
    }
    return protocol::Reply::success("none\n");
}

protocol::Reply
Coordinator::handleStreamHandoff(const std::string &body)
{
    const auto tokens = headerTokens(body);
    const auto id_text = tokenValue(tokens, "lease");
    const auto status = tokenValue(tokens, "status");
    if (!id_text || !status ||
        (*status != "ok" && *status != "error"))
        return protocol::Reply::error(
            "STREAM-HANDOFF: malformed header (want lease=<id> "
            "status=ok|error)");
    const std::uint64_t id = batch::parseCount(*id_text);
    unsigned windows = 0;
    if (const auto text = tokenValue(tokens, "windows"))
        windows = unsigned(batch::parseCount(*text));
    const std::string prefix =
        tokenValue(tokens, "prefix").value_or("-");
    double est_cpi = 0.0, ci_error = 0.0, mpki = 0.0;
    if (const auto text = tokenValue(tokens, "est_cpi"))
        est_cpi = batch::parseReal(*text);
    if (const auto text = tokenValue(tokens, "ci_error"))
        ci_error = batch::parseReal(*text);
    if (const auto text = tokenValue(tokens, "mpki"))
        mpki = batch::parseReal(*text);
    const std::string mrc = tokenValue(tokens, "mrc").value_or("");
    const std::size_t eol = body.find('\n');
    const std::string payload =
        eol == std::string::npos ? "" : body.substr(eol + 1);

    // A handoff the coordinator does not commit must not leak the
    // worker's prefix file.
    const auto dropPrefix = [&] {
        if (prefix != "-")
            std::remove(prefix.c_str());
    };

    std::lock_guard<std::mutex> lock(mutex_);
    sweepExpiredLocked(Clock::now());
    ++counters_.stream_handoffs;

    const auto lt = leases_.find(id);
    if (lt == leases_.end()) {
        // A zombie so stale its lease record is gone; the stream was
        // re-run anyway.
        dropPrefix();
        return protocol::Reply::success(
            "committed=0 stored=0 discarded=1\n");
    }
    if (lt->second.kind != LeaseKind::Stream)
        return protocol::Reply::error(
            "STREAM-HANDOFF: lease " + *id_text +
            " is a work-unit lease; use COMPLETE");
    const Lease lease = std::move(lt->second);
    leases_.erase(lt);

    const auto st = streams_.find(lease.stream);
    if (st == streams_.end()) {
        dropPrefix();
        return protocol::Reply::success(
            "committed=0 stored=0 discarded=1\n");
    }
    FleetStream &stream = st->second;
    if (stream.leased && stream.lease_id == id)
        stream.leased = false;

    const auto ack = [&](std::uint64_t stored,
                         std::uint64_t discarded) {
        return protocol::Reply::success(
            "committed=" + std::to_string(stream.committed) +
            " stored=" + std::to_string(stored) +
            " discarded=" + std::to_string(discarded) + "\n");
    };

    if (*status == "error") {
        dropPrefix();
        // Only an *active* lease may fail the stream — a zombie's
        // error must not poison a re-lease that might still succeed.
        if (!lease.expired && !stream.finished && !stream.failed) {
            stream.failed = true;
            stream.error = payload.empty()
                               ? "worker reported an execution error"
                               : payload;
            ++counters_.streams_failed;
            streams_cv_.notify_all();
            return ack(0, 0);
        }
        return ack(0, 1);
    }

    if (stream.finished || stream.failed) {
        dropPrefix();
        return ack(0, 1);
    }

    if (lease.finish) {
        dropPrefix();
        if (windows != stream.config.schedule.num_regions)
            return protocol::Reply::error(
                "STREAM-HANDOFF: finish handoff covers " +
                std::to_string(windows) + " of " +
                std::to_string(stream.config.schedule.num_regions) +
                " windows");
        sampling::MethodResult result;
        try {
            std::istringstream is(payload, std::ios::binary);
            result = batch::readMethodResult(is);
        } catch (const batch::BatchError &e) {
            // The stream stays leasable; another worker can finish.
            return protocol::Reply::error(
                std::string("STREAM-HANDOFF: malformed result "
                            "payload: ") +
                e.what());
        }
        counters_.stream_windows += windows - stream.committed;
        stream.committed = windows;
        stream.result = std::move(result);
        stream.finished = true;
        stream.windows = windows;
        stream.est_cpi = est_cpi;
        stream.ci_error = ci_error;
        stream.mpki = mpki;
        stream.mrc = mrc;
        ++counters_.streams_finished;
        streams_cv_.notify_all();
        if (config_.verbose)
            std::fprintf(stderr,
                         "[coordinator] stream %llu finished by "
                         "lease %llu\n",
                         (unsigned long long)lease.stream,
                         (unsigned long long)id);
        return ack(1, 0);
    }

    // Prefix handoff: first write per window count wins. Accept any
    // strict extension of the committed prefix — even from an expired
    // lease: a window's warm state is a pure function of the trace
    // bytes and the config, so duplicates are bit-identical.
    if (windows <= stream.committed) {
        dropPrefix();
        return ack(0, 1);
    }
    if (prefix == "-")
        return protocol::Reply::error(
            "STREAM-HANDOFF: prefix handoff without a prefix file");
    try {
        const auto warm = checkpoint::loadPrefixForRun(
            "stream:" + std::to_string(lease.stream), stream.config,
            prefix);
        if (warm.size() != windows)
            throw checkpoint::CheckpointError(
                "prefix file covers " + std::to_string(warm.size()) +
                " windows, header claims " + std::to_string(windows));
    } catch (const checkpoint::CheckpointError &e) {
        dropPrefix();
        // The stream stays leasable from the old prefix.
        return protocol::Reply::error(
            std::string("STREAM-HANDOFF: invalid prefix: ") + e.what());
    }
    const std::string dest = stream.spool->path() + ".lvp";
    if (std::rename(prefix.c_str(), dest.c_str()) != 0) {
        dropPrefix();
        return protocol::Reply::error(
            "STREAM-HANDOFF: cannot install prefix file '" + prefix +
            "'");
    }
    counters_.stream_windows += windows - stream.committed;
    stream.committed = windows;
    stream.prefix_path = dest;
    stream.est_cpi = est_cpi;
    stream.ci_error = ci_error;
    stream.mpki = mpki;
    stream.mrc = mrc;
    if (config_.verbose)
        std::fprintf(stderr,
                     "[coordinator] stream %llu prefix -> %u windows "
                     "(lease %llu%s)\n",
                     (unsigned long long)lease.stream, windows,
                     (unsigned long long)id,
                     lease.expired ? ", zombie won" : "");
    return ack(1, 0);
}

} // namespace delorean::service
