#include "service/watcher.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "batch/error.hh"
#include "service/protocol.hh"

namespace delorean::service
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *plan_suffix = ".plan";
constexpr const char *done_subdir = "done";
constexpr const char *failed_subdir = "failed";

bool
isPlanName(const std::string &name)
{
    const std::string suffix = plan_suffix;
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** FNV-1a 64 over the manifest bytes — the change detector, not a key. */
std::uint64_t
contentDigest(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
makeDir(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec)
        throw ServiceError("cannot create spool directory '" + path +
                           "': " + ec.message());
}

} // namespace

ManifestWatcher::ManifestWatcher(const std::string &spool_dir)
    : dir_(spool_dir)
{
    if (dir_.empty())
        throw ServiceError("empty spool directory");
    makeDir(dir_);
    makeDir(dir_ + "/" + done_subdir);
    makeDir(dir_ + "/" + failed_subdir);
}

std::vector<SpoolPickup>
ManifestWatcher::scan()
{
    // Phase 1 (locked): stat pass — stability bookkeeping only, no
    // file contents. Collect the stable, idle candidates.
    std::vector<std::string> candidates;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::map<std::string, std::pair<std::int64_t, std::uint64_t>>
            seen;
        // A failed directory read must NOT look like an empty spool:
        // wiping entries_ on a transient EACCES/NFS hiccup would drop
        // in_flight and processed_digest guards (resubmitting stuck
        // manifests every poll, archiving edited ones). Warn and keep
        // the previous state until the next successful pass.
        std::error_code ec;
        fs::directory_iterator dit(dir_, ec);
        if (ec) {
            warn("spool: cannot scan %s: %s", dir_.c_str(),
                 ec.message().c_str());
            return {};
        }
        try {
            for (const auto &de : dit) {
                std::error_code fec;
                if (!de.is_regular_file(fec))
                    continue;
                const std::string name =
                    de.path().filename().string();
                if (!isPlanName(name))
                    continue;
                const auto mtime = de.last_write_time(fec);
                if (fec)
                    continue; // vanished mid-scan
                const auto size = de.file_size(fec);
                if (fec)
                    continue;
                seen.emplace(
                    name,
                    std::make_pair(
                        std::int64_t(std::chrono::duration_cast<
                                         std::chrono::nanoseconds>(
                                         mtime.time_since_epoch())
                                         .count()),
                        std::uint64_t(size)));
            }
        } catch (const fs::filesystem_error &e) {
            warn("spool: scan of %s failed: %s", dir_.c_str(),
                 e.what());
            return {};
        }
        for (auto it = entries_.begin(); it != entries_.end();)
            it = seen.count(it->first) ? std::next(it)
                                       : entries_.erase(it);

        for (const auto &[name, stat] : seen) {
            Entry &entry = entries_[name];
            const auto [mtime_ns, size] = stat;
            if (entry.mtime_ns != mtime_ns || entry.size != size) {
                // New or still being written: wait for a quiet scan.
                entry.mtime_ns = mtime_ns;
                entry.size = size;
                continue;
            }
            // Unchanged across two scans: stable enough to read.
            if (!entry.in_flight)
                candidates.push_back(name);
        }
    }

    // Phase 2 (unlocked): read and digest the candidates. File I/O
    // and — below — manifest parsing (which digests any referenced
    // trace files, potentially large) must not hold the mutex:
    // workers calling moveDone/moveFailed would stall behind it.
    struct Snapshot
    {
        std::string name;
        std::string path;
        std::string text;
        std::uint64_t digest = 0;
    };
    std::vector<Snapshot> snapshots;
    for (const auto &name : candidates) {
        Snapshot snap;
        snap.name = name;
        snap.path = dir_ + "/" + name;
        std::ifstream is(snap.path, std::ios::binary);
        if (!is)
            continue; // transient (permissions, vanishing); retry later
        std::ostringstream buffer;
        buffer << is.rdbuf();
        snap.text = buffer.str();
        snap.digest = contentDigest(snap.text);
        snapshots.push_back(std::move(snap));
    }

    // Phase 3 (locked): claim — mark in_flight and record the digest
    // so no concurrent scan double-submits, skipping anything already
    // processed at this content.
    std::vector<Snapshot> claimed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &snap : snapshots) {
            const auto it = entries_.find(snap.name);
            if (it == entries_.end() || it->second.in_flight)
                continue;
            if (it->second.processed_digest &&
                *it->second.processed_digest == snap.digest)
                continue; // already handled; probably a failed move
            it->second.processed_digest = snap.digest;
            it->second.in_flight = true;
            ++processed_;
            claimed.push_back(std::move(snap));
        }
    }

    // Phase 4 (unlocked): parse the claimed snapshots — the *exact
    // bytes* digested above, so the digest gate and the plan can
    // never diverge.
    std::vector<SpoolPickup> ready;
    for (const auto &snap : claimed) {
        try {
            ready.push_back({snap.path, snap.name,
                             batch::BatchPlan::fromManifestText(
                                 snap.text, snap.path)});
        } catch (const std::exception &e) {
            moveFailed(snap.path, e.what());
        }
    }
    return ready;
}

void
ManifestWatcher::moveLocked(const std::string &path,
                            const std::string &subdir,
                            const std::string *error)
{
    const std::string name = fs::path(path).filename().string();

    // Archive only the content that actually ran: if the file was
    // edited while its job was in flight, renaming it would file the
    // *new*, never-executed bytes under done/ — silently swallowing a
    // resubmission. Leave it in place instead; its digest differs
    // from processed_digest, so the next scan picks it up fresh.
    // (An edit after this check and before the rename below can still
    // lose — polling can narrow that window, not close it.)
    const auto it = entries_.find(name);
    if (it != entries_.end() && it->second.processed_digest) {
        std::ifstream is(path, std::ios::binary);
        if (is) {
            std::ostringstream buffer;
            buffer << is.rdbuf();
            if (contentDigest(buffer.str()) !=
                *it->second.processed_digest) {
                warn("spool: %s changed while its job ran; leaving "
                     "it for re-pickup", path.c_str());
                it->second.in_flight = false;
                return;
            }
        }
    }

    const std::string base = dir_ + "/" + subdir + "/" + name;
    std::string target = base;
    for (unsigned n = 1;; ++n) {
        std::error_code ec;
        if (!fs::exists(target, ec))
            break;
        target = base + "." + std::to_string(n);
    }

    std::error_code ec;
    fs::rename(path, target, ec);
    if (ec) {
        // The manifest is stuck in the spool. Keep its entry (with
        // processed_digest set) so it is not resubmitted every poll,
        // but clear in_flight so a future *edit* can resubmit it.
        warn("spool: cannot move %s to %s/: %s", path.c_str(),
             subdir.c_str(), ec.message().c_str());
        const auto it = entries_.find(name);
        if (it != entries_.end())
            it->second.in_flight = false;
        return;
    }
    if (error) {
        // The .err sidecar is the only place the failure reason
        // survives — if it cannot be written (permissions, full disk),
        // say so in the log rather than archiving a silent failure.
        const std::string err_path = target + ".err";
        std::ofstream os(err_path, std::ios::trunc);
        os << *error << "\n";
        os.flush();
        if (!os)
            warn("spool: cannot write failure reason to %s (job "
                 "archived without it): %s", err_path.c_str(),
                 error->c_str());
    }
    // Moved away: forget the path entirely. A later drop at the same
    // name — even with identical content — is a fresh submission.
    entries_.erase(name);
}

void
ManifestWatcher::moveDone(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    moveLocked(path, done_subdir, nullptr);
}

void
ManifestWatcher::moveFailed(const std::string &path,
                            const std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    moveLocked(path, failed_subdir, &error);
}

} // namespace delorean::service
