/**
 * @file
 * LLC stride prefetcher with a fixed number of streams (paper §6.3.2:
 * "an LLC stride prefetcher with 8 streams").
 *
 * The prefetcher watches the demand stream (PC, cacheline, miss?) and,
 * once a per-PC stride has been confirmed, emits prefetch candidates.
 * DeLorean's extension (§6.3.2) feeds it *predicted* misses from the
 * statistical model instead of simulated misses, and nullifies prefetches
 * to lines predicted present — both behaviours hang off this same class;
 * the caller decides what counts as a miss and what to do with the
 * candidates.
 */

#ifndef DELOREAN_CACHE_PREFETCHER_HH
#define DELOREAN_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace delorean::cache
{

/** Configuration for the stride prefetcher. */
struct PrefetcherConfig
{
    unsigned streams = 8;    //!< concurrent PC streams tracked
    unsigned degree = 2;     //!< prefetches issued per trigger
    unsigned threshold = 2;  //!< stride confirmations before issuing
};

/**
 * Per-PC stride detection over a small, LRU-managed stream table.
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config = {});

    /**
     * Observe a demand access.
     *
     * @param pc    load/store PC
     * @param line  accessed cacheline number
     * @param miss  whether the access missed (streams are only allocated
     *              on misses, mirroring miss-triggered prefetching)
     * @return cacheline numbers to prefetch (possibly empty)
     */
    std::vector<Addr> observe(Addr pc, Addr line, bool miss);

    /** Forget all streams. */
    void reset();

    std::uint64_t issued() const { return issued_; }

  private:
    struct Stream
    {
        Addr pc = 0;
        Addr last_line = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    PrefetcherConfig config_;
    std::vector<Stream> streams_;
    std::uint64_t tick_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_PREFETCHER_HH
