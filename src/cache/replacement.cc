#include "cache/replacement.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace delorean::cache
{

ReplKind
replKindFromString(const std::string &name)
{
    if (name == "lru")
        return ReplKind::LRU;
    if (name == "random")
        return ReplKind::Random;
    if (name == "treeplru")
        return ReplKind::TreePLRU;
    if (name == "nmru")
        return ReplKind::NMRU;
    fatal("unknown replacement policy '%s'", name.c_str());
    return ReplKind::LRU;
}

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return "lru";
      case ReplKind::Random:
        return "random";
      case ReplKind::TreePLRU:
        return "treeplru";
      case ReplKind::NMRU:
        return "nmru";
    }
    return "?";
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, std::uint64_t sets, unsigned ways,
                std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
      case ReplKind::TreePLRU:
        return std::make_unique<TreePlruPolicy>(sets, ways);
      case ReplKind::NMRU:
        return std::make_unique<NmruPolicy>(sets, ways, seed);
    }
    panic("makeReplacement: bad kind %d", int(kind));
    return nullptr;
}

// ------------------------------------------------------------------- LRU

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), tick_(0), stamp_(sets * ways, 0)
{
}

void
LruPolicy::touch(std::uint64_t set, unsigned way)
{
    stamp_[set * ways_ + way] = ++tick_;
}

unsigned
LruPolicy::victim(std::uint64_t set)
{
    const std::uint64_t *row = &stamp_[set * ways_];
    unsigned best = 0;
    for (unsigned w = 1; w < ways_; ++w) {
        if (row[w] < row[best])
            best = w;
    }
    return best;
}

void
LruPolicy::invalidate(std::uint64_t set, unsigned way)
{
    stamp_[set * ways_ + way] = 0;
}

void
LruPolicy::reset()
{
    std::fill(stamp_.begin(), stamp_.end(), 0);
    tick_ = 0;
}

// ---------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t sets, unsigned ways,
                           std::uint64_t seed)
    : ways_(ways), seed_(seed), rng_(seed)
{
    (void)sets;
}

void
RandomPolicy::touch(std::uint64_t set, unsigned way)
{
    (void)set;
    (void)way;
}

unsigned
RandomPolicy::victim(std::uint64_t set)
{
    (void)set;
    return unsigned(rng_.nextBounded(ways_));
}

void
RandomPolicy::invalidate(std::uint64_t set, unsigned way)
{
    (void)set;
    (void)way;
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
}

// -------------------------------------------------------------- TreePLRU

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), tree_bits_(ways - 1), bits_(sets * (ways - 1), false)
{
    fatal_if(!isPowerOf2(std::uint64_t(ways)) || ways < 2,
             "TreePLRU requires a power-of-two way count >= 2, got %u",
             ways);
}

void
TreePlruPolicy::touch(std::uint64_t set, unsigned way)
{
    // Walk from the root towards the referenced way, pointing every node
    // away from the path taken.
    const std::uint64_t base = set * tree_bits_;
    unsigned node = 0;
    unsigned lo = 0, hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        const bool right = way >= mid;
        bits_[base + node] = !right; // point away from the touched half
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

unsigned
TreePlruPolicy::victim(std::uint64_t set)
{
    const std::uint64_t base = set * tree_bits_;
    unsigned node = 0;
    unsigned lo = 0, hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        const bool right = bits_[base + node];
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
TreePlruPolicy::invalidate(std::uint64_t set, unsigned way)
{
    // Point the tree towards the invalidated way so it is refilled first.
    const std::uint64_t base = set * tree_bits_;
    unsigned node = 0;
    unsigned lo = 0, hi = ways_;
    while (hi - lo > 1) {
        const unsigned mid = lo + (hi - lo) / 2;
        const bool right = way >= mid;
        bits_[base + node] = right;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

void
TreePlruPolicy::reset()
{
    std::fill(bits_.begin(), bits_.end(), false);
}

// ------------------------------------------------------------------ NMRU

NmruPolicy::NmruPolicy(std::uint64_t sets, unsigned ways,
                       std::uint64_t seed)
    : ways_(ways), seed_(seed), rng_(seed), mru_(sets, 0)
{
    fatal_if(ways < 2, "NMRU needs at least two ways");
}

void
NmruPolicy::touch(std::uint64_t set, unsigned way)
{
    mru_[set] = std::uint8_t(way);
}

unsigned
NmruPolicy::victim(std::uint64_t set)
{
    const unsigned pick = unsigned(rng_.nextBounded(ways_ - 1));
    return pick >= mru_[set] ? pick + 1 : pick;
}

void
NmruPolicy::invalidate(std::uint64_t set, unsigned way)
{
    (void)set;
    (void)way;
}

void
NmruPolicy::reset()
{
    rng_ = Rng(seed_);
    std::fill(mru_.begin(), mru_.end(), 0);
}


std::unique_ptr<ReplacementPolicy>
LruPolicy::clone() const
{
    return std::make_unique<LruPolicy>(*this);
}

std::unique_ptr<ReplacementPolicy>
RandomPolicy::clone() const
{
    return std::make_unique<RandomPolicy>(*this);
}

std::unique_ptr<ReplacementPolicy>
TreePlruPolicy::clone() const
{
    return std::make_unique<TreePlruPolicy>(*this);
}

std::unique_ptr<ReplacementPolicy>
NmruPolicy::clone() const
{
    return std::make_unique<NmruPolicy>(*this);
}

} // namespace delorean::cache
