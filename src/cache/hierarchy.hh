/**
 * @file
 * The two-level cache hierarchy of Table 1: split 64 KiB L1I/L1D and a
 * unified LLC (1 MiB - 512 MiB in the paper's sweeps).
 */

#ifndef DELOREAN_CACHE_HIERARCHY_HH
#define DELOREAN_CACHE_HIERARCHY_HH

#include "cache/cache.hh"

namespace delorean::cache
{

/** Deepest level that serviced an access. */
enum class HitLevel : std::uint8_t
{
    L1,
    LLC,
    Memory,
};

/**
 * L1I + L1D + LLC with a simple non-inclusive fill policy: lines fill
 * into both the requesting L1 and the LLC; L1 victims are dropped (clean)
 * or written back into the LLC (dirty).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Build from pre-warmed caches (multi-configuration sweeps). */
    CacheHierarchy(const HierarchyConfig &config, const Cache &l1i,
                   const Cache &l1d, const Cache &llc);

    /**
     * Functional data access (load/store) at cacheline granularity.
     * Updates all levels. @return deepest level consulted.
     */
    HitLevel dataAccess(Addr line, bool write);

    /** Functional instruction fetch access. */
    HitLevel instAccess(Addr line);

    /** Latency in target cycles for an access that hit at @p level. */
    unsigned latency(HitLevel level) const;

    /** Drop the contents of all levels. */
    void flush();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &llc() { return llc_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &llc() const { return llc_; }

    const HierarchyConfig &config() const { return config_; }

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache llc_;
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_HIERARCHY_HH
