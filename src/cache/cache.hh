/**
 * @file
 * A set-associative, write-back/write-allocate cache model.
 *
 * This is a functional (state-only) cache in the style of gem5's classic
 * caches: it models tag state, replacement and writebacks exactly, but
 * carries no timing — the timing model (cpu/ooo_core) adds latencies on
 * top of the outcome. Both functional warming (SMARTS) and the lukewarm
 * cache of statistical warming use this same class.
 */

#ifndef DELOREAN_CACHE_CACHE_HH
#define DELOREAN_CACHE_CACHE_HH

#include <memory>

#include "base/stats.hh"
#include "cache/cache_config.hh"
#include "cache/replacement.hh"

namespace delorean::cache
{

/** Outcome of a cache lookup+fill. */
struct AccessResult
{
    bool hit = false;
    bool writeback = false;        //!< a dirty victim was evicted
    Addr victim_line = invalid_addr; //!< evicted line (if any)
};

/**
 * One level of cache, addressed by cacheline number.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Caches are copyable: multi-configuration sweeps snapshot warmed
     *  state instead of re-simulating the warm-up. */
    Cache(const Cache &other);
    Cache &operator=(const Cache &other);

    /**
     * Access @p line (lookup; on miss, allocate and evict as needed).
     *
     * @param line  cacheline number (byte address >> 6)
     * @param write true for stores (sets the dirty bit)
     */
    AccessResult access(Addr line, bool write);

    /** Lookup without modifying any state. */
    bool contains(Addr line) const;

    /**
     * True if every way of the set @p line maps to holds a valid line.
     * The DSW conflict-miss rule (paper Figure 3) keys off this.
     */
    bool setFull(Addr line) const;

    /** Insert @p line without counting an access (prefetch fill). */
    AccessResult insert(Addr line, bool dirty = false);

    /** Invalidate @p line if present. @return true if it was present. */
    bool invalidate(Addr line);

    /** Drop all contents (cold cache). */
    void flush();

    /** Number of valid lines currently resident. */
    std::uint64_t validLines() const;

    const CacheConfig &config() const { return config_; }

    // Statistics (monotonic across flushes).
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }
    void resetStats();

    /** Miss rate over all access() calls so far. */
    double missRate() const;

  private:
    std::uint64_t setIndex(Addr line) const { return line & set_mask_; }

    /** @return way holding @p line in @p set, or -1. */
    int findWay(std::uint64_t set, Addr line) const;

    /** @return an invalid way in @p set, or -1 if the set is full. */
    int findFree(std::uint64_t set) const;

    CacheConfig config_;
    std::uint64_t sets_;
    unsigned ways_;
    std::uint64_t set_mask_;

    std::vector<Addr> tags_;   //!< sets x ways; invalid_addr = empty
    std::vector<bool> dirty_;
    std::unique_ptr<ReplacementPolicy> repl_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_CACHE_HH
