/**
 * @file
 * Cache replacement policies.
 *
 * The paper's configuration (Table 1) is LRU throughout, but §4.1 argues
 * DeLorean generalizes to other policies via statistical cache modeling,
 * so the cache accepts any policy implementing this interface: LRU,
 * random, tree-PLRU, and NMRU are provided.
 */

#ifndef DELOREAN_CACHE_REPLACEMENT_HH
#define DELOREAN_CACHE_REPLACEMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace delorean::cache
{

/** Replacement policy kinds for configuration. */
enum class ReplKind
{
    LRU,
    Random,
    TreePLRU,
    NMRU,
};

/** Parse "lru" / "random" / "treeplru" / "nmru" (fatal on error). */
ReplKind replKindFromString(const std::string &name);

/** @return lowercase name of @p kind. */
const char *replKindName(ReplKind kind);

/**
 * Per-cache replacement state. The cache calls touch() on every hit or
 * fill and victim() when it must evict from a full set.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a reference to (set, way). */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /** Choose the victim way in a full @p set (does not modify state). */
    virtual unsigned victim(std::uint64_t set) = 0;

    /** Forget any state for (set, way) (invalidation). */
    virtual void invalidate(std::uint64_t set, unsigned way) = 0;

    /** Reset to the initial (cold) state. */
    virtual void reset() = 0;

    /** Deep copy (cache snapshots for multi-configuration sweeps). */
    virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

    virtual ReplKind kind() const = 0;
};

/** Factory for the policy @p kind sized for @p sets x @p ways. */
std::unique_ptr<ReplacementPolicy> makeReplacement(ReplKind kind,
                                                   std::uint64_t sets,
                                                   unsigned ways,
                                                   std::uint64_t seed = 7);

/** True LRU via per-line timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;
    void reset() override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplKind kind() const override { return ReplKind::LRU; }

  private:
    unsigned ways_;
    std::uint64_t tick_;
    std::vector<std::uint64_t> stamp_; //!< sets x ways, 0 = never used
};

/** Uniform random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;
    void reset() override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplKind kind() const override { return ReplKind::Random; }

  private:
    unsigned ways_;
    std::uint64_t seed_;
    Rng rng_;
};

/** Tree pseudo-LRU (ways must be a power of two). */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;
    void reset() override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplKind kind() const override { return ReplKind::TreePLRU; }

  private:
    unsigned ways_;
    unsigned tree_bits_; //!< ways - 1 internal nodes per set
    std::vector<bool> bits_;
};

/** Not-most-recently-used: random victim excluding the MRU way. */
class NmruPolicy : public ReplacementPolicy
{
  public:
    NmruPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void invalidate(std::uint64_t set, unsigned way) override;
    void reset() override;
    std::unique_ptr<ReplacementPolicy> clone() const override;
    ReplKind kind() const override { return ReplKind::NMRU; }

  private:
    unsigned ways_;
    std::uint64_t seed_;
    Rng rng_;
    std::vector<std::uint8_t> mru_;
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_REPLACEMENT_HH
