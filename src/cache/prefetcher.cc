#include "cache/prefetcher.hh"

#include "base/logging.hh"

namespace delorean::cache
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config)
    : config_(config), streams_(config.streams)
{
    fatal_if(config.streams == 0, "prefetcher needs at least one stream");
    fatal_if(config.degree == 0, "prefetcher degree must be >= 1");
}

std::vector<Addr>
StridePrefetcher::observe(Addr pc, Addr line, bool miss)
{
    ++tick_;

    Stream *entry = nullptr;
    Stream *lru = &streams_[0];
    for (auto &s : streams_) {
        if (s.valid && s.pc == pc) {
            entry = &s;
            break;
        }
        if (!s.valid || s.lru < lru->lru)
            lru = &s;
    }

    if (!entry) {
        // Allocate streams on misses only: miss-triggered prefetching.
        if (!miss)
            return {};
        *lru = Stream{.pc = pc, .last_line = line, .stride = 0,
                      .confidence = 0, .lru = tick_, .valid = true};
        return {};
    }

    entry->lru = tick_;
    const std::int64_t delta =
        std::int64_t(line) - std::int64_t(entry->last_line);
    entry->last_line = line;

    if (delta == 0)
        return {};

    if (delta == entry->stride) {
        if (entry->confidence < config_.threshold + 4)
            ++entry->confidence;
    } else {
        entry->stride = delta;
        entry->confidence = 1;
        return {};
    }

    if (entry->confidence < config_.threshold)
        return {};

    std::vector<Addr> out;
    out.reserve(config_.degree);
    Addr next = line;
    for (unsigned d = 0; d < config_.degree; ++d) {
        next = Addr(std::int64_t(next) + entry->stride);
        out.push_back(next);
    }
    issued_ += out.size();
    return out;
}

void
StridePrefetcher::reset()
{
    for (auto &s : streams_)
        s.valid = false;
    tick_ = 0;
}

} // namespace delorean::cache
