#include "cache/cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace delorean::cache
{

void
CacheConfig::validate() const
{
    fatal_if(size < line_size, "%s: size below one line", name.c_str());
    fatal_if(assoc == 0, "%s: zero associativity", name.c_str());
    fatal_if(size % (std::uint64_t(assoc) * line_size) != 0,
             "%s: size not divisible by assoc * line size", name.c_str());
    fatal_if(!isPowerOf2(sets()),
             "%s: set count %llu must be a power of two", name.c_str(),
             (unsigned long long)sets());
    fatal_if(mshrs == 0, "%s: zero MSHRs", name.c_str());
}

Cache::Cache(const CacheConfig &config)
    : config_(config),
      sets_(config.sets()),
      ways_(config.assoc),
      set_mask_(config.sets() - 1),
      tags_(config.sets() * config.assoc, invalid_addr),
      dirty_(config.sets() * config.assoc, false),
      repl_(makeReplacement(config.repl, config.sets(), config.assoc))
{
    config_.validate();
}

Cache::Cache(const Cache &other)
    : config_(other.config_),
      sets_(other.sets_),
      ways_(other.ways_),
      set_mask_(other.set_mask_),
      tags_(other.tags_),
      dirty_(other.dirty_),
      repl_(other.repl_->clone()),
      hits_(other.hits_),
      misses_(other.misses_),
      evictions_(other.evictions_),
      writebacks_(other.writebacks_)
{
}

Cache &
Cache::operator=(const Cache &other)
{
    if (this == &other)
        return *this;
    config_ = other.config_;
    sets_ = other.sets_;
    ways_ = other.ways_;
    set_mask_ = other.set_mask_;
    tags_ = other.tags_;
    dirty_ = other.dirty_;
    repl_ = other.repl_->clone();
    hits_ = other.hits_;
    misses_ = other.misses_;
    evictions_ = other.evictions_;
    writebacks_ = other.writebacks_;
    return *this;
}

int
Cache::findWay(std::uint64_t set, Addr line) const
{
    const Addr *row = &tags_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (row[w] == line)
            return int(w);
    }
    return -1;
}

int
Cache::findFree(std::uint64_t set) const
{
    const Addr *row = &tags_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (row[w] == invalid_addr)
            return int(w);
    }
    return -1;
}

AccessResult
Cache::access(Addr line, bool write)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way >= 0) {
        ++hits_;
        repl_->touch(set, unsigned(way));
        if (write)
            dirty_[set * ways_ + unsigned(way)] = true;
        return {.hit = true};
    }
    ++misses_;
    AccessResult res = insert(line, write);
    res.hit = false;
    return res;
}

AccessResult
Cache::insert(Addr line, bool dirty)
{
    AccessResult res;
    const std::uint64_t set = setIndex(line);

    if (findWay(set, line) >= 0) {
        // Prefetch into a resident line: nothing to do.
        res.hit = true;
        return res;
    }

    int way = findFree(set);
    if (way < 0) {
        way = int(repl_->victim(set));
        const std::size_t idx = set * ways_ + unsigned(way);
        res.victim_line = tags_[idx];
        res.writeback = dirty_[idx];
        ++evictions_;
        if (res.writeback)
            ++writebacks_;
    }

    const std::size_t idx = set * ways_ + unsigned(way);
    tags_[idx] = line;
    dirty_[idx] = dirty;
    repl_->touch(set, unsigned(way));
    return res;
}

bool
Cache::contains(Addr line) const
{
    return findWay(setIndex(line), line) >= 0;
}

bool
Cache::setFull(Addr line) const
{
    return findFree(setIndex(line)) < 0;
}

bool
Cache::invalidate(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return false;
    const std::size_t idx = set * ways_ + unsigned(way);
    tags_[idx] = invalid_addr;
    dirty_[idx] = false;
    repl_->invalidate(set, unsigned(way));
    return true;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), invalid_addr);
    std::fill(dirty_.begin(), dirty_.end(), false);
    repl_->reset();
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (const Addr t : tags_) {
        if (t != invalid_addr)
            ++n;
    }
    return n;
}

void
Cache::resetStats()
{
    hits_ = misses_ = evictions_ = writebacks_ = 0;
}

double
Cache::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? double(misses_) / double(total) : 0.0;
}

} // namespace delorean::cache
