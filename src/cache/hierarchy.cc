#include "cache/hierarchy.hh"

namespace delorean::cache
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), llc_(config.llc)
{
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               const Cache &l1i, const Cache &l1d,
                               const Cache &llc)
    : config_(config), l1i_(l1i), l1d_(l1d), llc_(llc)
{
    config_.llc = llc.config();
}

HitLevel
CacheHierarchy::dataAccess(Addr line, bool write)
{
    const AccessResult l1 = l1d_.access(line, write);
    if (l1.hit)
        return HitLevel::L1;

    // L1 victim writeback into the LLC (state only, no extra access
    // statistics for the demand stream).
    if (l1.writeback)
        llc_.insert(l1.victim_line, true);

    const AccessResult l2 = llc_.access(line, false);
    return l2.hit ? HitLevel::LLC : HitLevel::Memory;
}

HitLevel
CacheHierarchy::instAccess(Addr line)
{
    const AccessResult l1 = l1i_.access(line, false);
    if (l1.hit)
        return HitLevel::L1;

    const AccessResult l2 = llc_.access(line, false);
    return l2.hit ? HitLevel::LLC : HitLevel::Memory;
}

unsigned
CacheHierarchy::latency(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return config_.lat.l1_hit;
      case HitLevel::LLC:
        return config_.lat.l1_hit + config_.lat.llc_hit;
      case HitLevel::Memory:
        return config_.lat.l1_hit + config_.lat.llc_hit +
               config_.lat.mem;
    }
    return config_.lat.l1_hit;
}

void
CacheHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    llc_.flush();
}

} // namespace delorean::cache
