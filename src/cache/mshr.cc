#include "cache/mshr.hh"

#include "base/logging.hh"

namespace delorean::cache
{

MshrFile::MshrFile(unsigned entries)
    : entries_(entries)
{
    fatal_if(entries == 0, "MshrFile needs at least one entry");
}

bool
MshrFile::hit(Addr line, Tick now)
{
    for (auto &e : entries_) {
        if (!e.valid)
            continue;
        if (e.ready <= now) {
            e.valid = false; // lazy retire
            continue;
        }
        if (e.line == line)
            return true;
    }
    return false;
}

Tick
MshrFile::readyAt(Addr line) const
{
    for (const auto &e : entries_) {
        if (e.valid && e.line == line)
            return e.ready;
    }
    panic("MshrFile::readyAt: line %llu not in flight",
          (unsigned long long)line);
    return 0;
}

Tick
MshrFile::allocate(Addr line, Tick now, Tick ready)
{
    // Fast path: grab a free or expired slot.
    Entry *oldest = nullptr;
    for (auto &e : entries_) {
        if (!e.valid || e.ready <= now) {
            e.valid = true;
            e.line = line;
            e.ready = ready;
            return now;
        }
        if (!oldest || e.ready < oldest->ready)
            oldest = &e;
    }
    // Structural stall: wait for the earliest retire, then reuse it.
    const Tick start = oldest->ready;
    const Tick delay = start - now;
    oldest->line = line;
    oldest->ready = ready + delay;
    return start;
}

unsigned
MshrFile::occupancy(Tick now) const
{
    unsigned n = 0;
    for (const auto &e : entries_) {
        if (e.valid && e.ready > now)
            ++n;
    }
    return n;
}

void
MshrFile::clear()
{
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace delorean::cache
