/**
 * @file
 * Cache and hierarchy configuration (Table 1 of the paper).
 */

#ifndef DELOREAN_CACHE_CACHE_CONFIG_HH
#define DELOREAN_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "base/addr.hh"
#include "base/units.hh"
#include "cache/replacement.hh"

namespace delorean::cache
{

/** Configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size = 64 * KiB;
    unsigned assoc = 2;
    ReplKind repl = ReplKind::LRU;
    unsigned mshrs = 8;

    std::uint64_t lines() const { return size / line_size; }
    std::uint64_t sets() const { return lines() / assoc; }

    /** Sanity-check the geometry (fatal on user error). */
    void validate() const;
};

/** Access latencies in target cycles. */
struct LatencyConfig
{
    unsigned l1_hit = 4;
    unsigned llc_hit = 30;
    unsigned mem = 200;
};

/** Full hierarchy configuration; defaults mirror Table 1. */
struct HierarchyConfig
{
    CacheConfig l1i{.name = "l1i", .size = 64 * KiB, .assoc = 2,
                    .repl = ReplKind::LRU, .mshrs = 4};
    CacheConfig l1d{.name = "l1d", .size = 64 * KiB, .assoc = 2,
                    .repl = ReplKind::LRU, .mshrs = 8};
    CacheConfig llc{.name = "llc", .size = 8 * MiB, .assoc = 8,
                    .repl = ReplKind::LRU, .mshrs = 20};
    LatencyConfig lat;

    /** Copy with a different LLC size (design space sweeps). */
    HierarchyConfig
    withLlcSize(std::uint64_t size) const
    {
        HierarchyConfig c = *this;
        c.llc.size = size;
        return c;
    }

    void
    validate() const
    {
        l1i.validate();
        l1d.validate();
        llc.validate();
    }
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_CACHE_CONFIG_HH
