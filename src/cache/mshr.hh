/**
 * @file
 * Miss status holding registers.
 *
 * In the timing simulation an LLC/L1 miss occupies an MSHR until the fill
 * completes; a second access to the same in-flight line is an *MSHR hit*
 * (a delayed hit, not a second miss). The Analyst models lukewarm-cache
 * MSHR hits the same way (paper §3.1.2), so this structure is shared
 * between the timing model and the statistical warming path.
 */

#ifndef DELOREAN_CACHE_MSHR_HH
#define DELOREAN_CACHE_MSHR_HH

#include <vector>

#include "base/types.hh"

namespace delorean::cache
{

/**
 * A small fully-associative file of in-flight misses, keyed by cacheline.
 * Time is the caller's notion of target cycles.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /**
     * Look up an in-flight miss for @p line at time @p now.
     * @return true if the line has an outstanding miss (MSHR hit).
     * Expired entries are retired lazily.
     */
    bool hit(Addr line, Tick now);

    /**
     * Completion time of the in-flight miss for @p line (hit() must have
     * returned true at @p now).
     */
    Tick readyAt(Addr line) const;

    /**
     * Allocate an entry for a new miss on @p line completing at
     * @p ready. If the file is full, the allocation stalls until the
     * earliest entry retires.
     *
     * @return the time the miss actually starts being serviced (equal to
     *         @p now unless a structural stall occurred).
     */
    Tick allocate(Addr line, Tick now, Tick ready);

    /** Number of live (unexpired) entries at @p now. */
    unsigned occupancy(Tick now) const;

    unsigned capacity() const { return unsigned(entries_.size()); }

    /** Drop all entries (end of region / reset). */
    void clear();

  private:
    struct Entry
    {
        Addr line = invalid_addr;
        Tick ready = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
};

} // namespace delorean::cache

#endif // DELOREAN_CACHE_MSHR_HH
