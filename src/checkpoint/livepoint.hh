/**
 * @file
 * Live-point checkpoint store: persisted per-window Explorer warm
 * state (the DLRNLVP1 on-disk format).
 *
 * A *live-point* is one region's complete warm state — the Scout's key
 * set plus the Explorer chain's measured reuse distances and vicinity
 * distribution (core::RegionWarm) — persisted so later runs skip the
 * Scout/Explorer passes entirely and boot each Analyst straight from
 * disk. This is our stand-in for the SMARTS live-points lineage
 * (TurboSMARTSim-style checkpoint libraries) the paper's warm-up
 * otherwise re-derives on every run, and it composes with the
 * confidence-driven driver (core::DeloreanConfig::confidence): resume
 * from live-points, replay windows in shuffled order, stop when the
 * estimate is statistically done.
 *
 * Format (all integers little-endian, like DLRNTRC1/DLRNRES1):
 *
 *   Header:
 *     char[8]  magic     "DLRNLVP1"
 *     u32      version   1
 *     u32      reserved  must be 0
 *     u64 x2   content key (hi, lo) — see livePointKey()
 *     str      workload display name       (u32 length + bytes)
 *     u32      num_regions, u64 spacing, u64 region_len,
 *     u64      detailed_warming            (the recorded schedule)
 *     u32      window count  (1..num_regions — windows 0..count-1, a
 *                             contiguous prefix of the schedule; a
 *                             complete file has count == num_regions,
 *                             a suspended streaming session persists
 *                             the windows fed so far)
 *
 *   Per window (ascending region order, contiguous from region 0):
 *     u32      region index
 *     u64      warming_start              (trace offset of the window)
 *     KeySet:
 *       u64    region_refs
 *       u32    key count, then per key:
 *              u64 line, u64 first_offset, u64 pc,
 *              u8  flags (bit0 write, bit1 lukewarm_hit, rest 0)
 *     ExplorerResult:
 *       u32    engaged (<= 4)
 *       u32    back-distance count, then per entry:
 *              u64 line (strictly increasing), u64 distance
 *       u32    unresolved count, then u64 per line (recorded order)
 *       u64[4] found_by, dp_traps, dp_false_positives,
 *              vicinity_traps, vicinity_false_positives, window_insts
 *       u64    vicinity_samples
 *       2x histogram (vicinity events, then censored):
 *              u32 sub_buckets (power of two), f64 total_weight,
 *              u32 cell count, then per cell:
 *              u64 bucket index (strictly increasing), f64 weight (> 0)
 *
 * The back-distance map and histogram cells are serialized in sorted
 * order and the histograms' accumulated total weights verbatim, so a
 * round trip reproduces warm state that compares operator==-equal and
 * resumes *bit-identically* to a fresh warm-up (measured timings are
 * not persisted; they are excluded from every equality relation).
 *
 * Invalidation: the embedded key is livePointKey(spec, config), which
 * folds in the workload identity — for file-backed specs the file's
 * size and content digest (batch/cache_key.hh) — and every
 * result-shaping config field except the early-stop knobs. Re-record a
 * trace, or change the schedule/hierarchy/cost model, and the key no
 * longer matches: loadForRun() refuses with CheckpointError and the
 * caller falls back to a fresh warm-up. Early-stop fields
 * (confidence/target_error/window_seed/min_windows) are normalized out
 * of the key on purpose — live-points are warm state, valid for any
 * stopping rule.
 *
 * Readers validate everything — magic, version, reserved bytes,
 * counts, flags, ordering, weight sanity, trailing bytes — and throw
 * CheckpointError on any violation; a corrupt live-point file must
 * surface as a recoverable "re-warm from scratch", never a crash.
 */

#ifndef DELOREAN_CHECKPOINT_LIVEPOINT_HH
#define DELOREAN_CHECKPOINT_LIVEPOINT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/cache_key.hh"
#include "core/delorean.hh"
#include "sampling/region.hh"

namespace delorean::core
{
class DeloreanSession;
} // namespace delorean::core

namespace delorean::checkpoint
{

/** Any live-point I/O or validation failure. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Format constants shared by writer and reader. */
struct LivePointFormat
{
    static constexpr std::array<char, 8> magic = {'D', 'L', 'R', 'N',
                                                  'L', 'V', 'P', '1'};
    static constexpr std::uint32_t version = 1;
};

/** One region's persisted warm state. */
struct LivePointWindow
{
    std::uint32_t region = 0;
    InstCount warming_start = 0; //!< trace offset the window starts at
    core::RegionWarm warm;

    bool operator==(const LivePointWindow &other) const = default;
};

/** An entire live-point file, in memory. */
struct LivePointFile
{
    batch::CacheKey key;    //!< livePointKey() of the producing run
    std::string workload;   //!< trace source display name
    sampling::RegionSchedule schedule;

    /**
     * Warm windows for regions 0..size()-1, ascending — a contiguous
     * prefix of the schedule. Complete files cover every region; a
     * suspended DeloreanSession persists just the fed prefix.
     */
    std::vector<LivePointWindow> windows;
};

/**
 * The content key a live-point file for (spec, config) must carry:
 * workload identity + every result-shaping config field, with the
 * early-stop knobs and livepoint_file normalized to their defaults
 * (warm state is independent of the stopping rule). Throws BatchError
 * if a file-backed spec cannot be read.
 */
batch::CacheKey livePointKey(const std::string &spec,
                             const core::DeloreanConfig &config);

/** Serialize @p file. Throws CheckpointError on write failure. */
void writeLivePoints(std::ostream &os, const LivePointFile &file);

/**
 * Parse one live-point file. Throws CheckpointError on any malformed
 * input. The returned windows compare operator==-equal to the ones
 * written.
 */
LivePointFile readLivePoints(std::istream &is);

/**
 * Run the full warm-up (Scout + Explorers) for @p spec under @p config
 * and package every region's warm state, keyed with livePointKey().
 */
LivePointFile recordLivePoints(const std::string &spec,
                               const core::DeloreanConfig &config);

/** Write @p file to @p path (temp file + atomic rename). */
void writeLivePointFile(const std::string &path,
                        const LivePointFile &file);

/** Open and parse @p path. Throws CheckpointError. */
LivePointFile readLivePointFile(const std::string &path);

/**
 * Load @p path and validate it against (spec, config): the embedded
 * key must equal livePointKey(spec, config) — a re-recorded trace or
 * changed configuration therefore invalidates the file — the recorded
 * schedule must match, and the file must cover *every* region of the
 * schedule (a suspended prefix resumes through loadPrefixForRun
 * instead). @return per-region warm state in region order, ready for
 * core::DeloreanMethod::run's warm parameter. Throws CheckpointError
 * on any mismatch or corruption.
 */
std::vector<core::RegionWarm>
loadForRun(const std::string &spec, const core::DeloreanConfig &config,
           const std::string &path);

/**
 * Same validation as loadForRun, but accepts any contiguous window
 * prefix: @return warm state for regions 0..k-1 where 1 <= k <=
 * num_regions — feed it to DeloreanSession::feedWarmWindows and
 * continue feeding fresh windows from there. Resuming is
 * bit-identical to having never suspended.
 */
std::vector<core::RegionWarm>
loadPrefixForRun(const std::string &spec,
                 const core::DeloreanConfig &config,
                 const std::string &path);

/**
 * Suspend @p session: package its fed windows' warm state (a prefix
 * of the schedule) as a live-point file keyed for @p spec, ready for
 * writeLivePointFile. Requires at least one fed window.
 */
LivePointFile sessionLivePoints(const core::DeloreanSession &session,
                                const std::string &spec);

} // namespace delorean::checkpoint

#endif // DELOREAN_CHECKPOINT_LIVEPOINT_HH
