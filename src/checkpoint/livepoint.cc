#include "checkpoint/livepoint.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "base/intmath.hh"
#include "core/session.hh"
#include "workload/endian.hh"
#include "workload/trace_registry.hh"

namespace delorean::checkpoint
{

namespace
{

namespace le = workload::le;

// Caps no legitimate live-point approaches; a reader hitting one is
// looking at garbage and must not attempt a huge allocation.
constexpr std::uint32_t max_string = 1u << 16;
constexpr std::uint32_t max_count = 1u << 24;
constexpr std::uint32_t max_sub_buckets = 1u << 16;

void
putBytes(std::ostream &os, const void *data, std::size_t n)
{
    os.write(static_cast<const char *>(data), std::streamsize(n));
    if (!os)
        throw CheckpointError("live-point write failed");
}

void
putU8(std::ostream &os, std::uint8_t v)
{
    putBytes(os, &v, 1);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::uint8_t b[4];
    le::putU32(b, v);
    putBytes(os, b, 4);
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::uint8_t b[8];
    le::putU64(b, v);
    putBytes(os, b, 8);
}

void
putF64(std::ostream &os, double v)
{
    putU64(os, std::bit_cast<std::uint64_t>(v));
}

void
putStr(std::ostream &os, const std::string &s)
{
    if (s.size() > max_string)
        throw CheckpointError("live-point write: string too long");
    putU32(os, std::uint32_t(s.size()));
    putBytes(os, s.data(), s.size());
}

void
getBytes(std::istream &is, void *data, std::size_t n)
{
    is.read(static_cast<char *>(data), std::streamsize(n));
    if (std::size_t(is.gcount()) != n)
        throw CheckpointError("live-point file truncated");
}

std::uint8_t
getU8(std::istream &is)
{
    std::uint8_t v;
    getBytes(is, &v, 1);
    return v;
}

std::uint32_t
getU32(std::istream &is)
{
    std::uint8_t b[4];
    getBytes(is, b, 4);
    return le::getU32(b);
}

std::uint64_t
getU64(std::istream &is)
{
    std::uint8_t b[8];
    getBytes(is, b, 8);
    return le::getU64(b);
}

double
getF64(std::istream &is)
{
    return std::bit_cast<double>(getU64(is));
}

std::string
getStr(std::istream &is)
{
    const std::uint32_t len = getU32(is);
    if (len > max_string)
        throw CheckpointError(
            "live-point file: implausible string length");
    std::string s(len, '\0');
    getBytes(is, s.data(), len);
    return s;
}

void
putHistogram(std::ostream &os, const LogHistogram &hist)
{
    const auto snap = hist.snapshot();
    putU32(os, snap.sub_buckets);
    putF64(os, snap.total_weight);
    if (snap.cells.size() > max_count)
        throw CheckpointError("live-point write: histogram too large");
    putU32(os, std::uint32_t(snap.cells.size()));
    for (const auto &[idx, weight] : snap.cells) {
        putU64(os, idx);
        putF64(os, weight);
    }
}

LogHistogram
getHistogram(std::istream &is)
{
    LogHistogram::Snapshot snap;
    snap.sub_buckets = getU32(is);
    if (snap.sub_buckets == 0 || snap.sub_buckets > max_sub_buckets ||
        !isPowerOf2(std::uint64_t(snap.sub_buckets)))
        throw CheckpointError(
            "live-point file: invalid histogram layout");
    snap.total_weight = getF64(is);
    if (!std::isfinite(snap.total_weight) || snap.total_weight < 0.0)
        throw CheckpointError(
            "live-point file: invalid histogram total weight");
    const std::uint32_t cells = getU32(is);
    if (cells > max_count)
        throw CheckpointError(
            "live-point file: implausible histogram cell count");
    snap.cells.reserve(cells);
    std::uint64_t prev_idx = 0;
    for (std::uint32_t i = 0; i < cells; ++i) {
        const std::uint64_t idx = getU64(is);
        if (i > 0 && idx <= prev_idx)
            throw CheckpointError("live-point file: histogram cells "
                                  "out of order");
        prev_idx = idx;
        const double weight = getF64(is);
        if (!std::isfinite(weight) || weight <= 0.0)
            throw CheckpointError(
                "live-point file: invalid histogram cell weight");
        snap.cells.emplace_back(idx, weight);
    }
    return LogHistogram::fromSnapshot(snap);
}

void
putWindow(std::ostream &os, const LivePointWindow &w)
{
    putU32(os, w.region);
    putU64(os, w.warming_start);

    // --- KeySet ---------------------------------------------------------
    const core::KeySet &keys = w.warm.keys;
    putU64(os, keys.region_refs);
    if (keys.keys.size() > max_count)
        throw CheckpointError("live-point write: key set too large");
    putU32(os, std::uint32_t(keys.keys.size()));
    for (const auto &k : keys.keys) {
        putU64(os, k.line);
        putU64(os, k.first_offset);
        putU64(os, k.pc);
        putU8(os, std::uint8_t((k.write ? 1 : 0) |
                               (k.lukewarm_hit ? 2 : 0)));
    }

    // --- ExplorerResult -------------------------------------------------
    const core::ExplorerResult &e = w.warm.explored;
    putU32(os, e.engaged);

    // The map is serialized sorted by line so recordings are
    // byte-deterministic (and the reader can validate ordering).
    std::vector<std::pair<Addr, RefCount>> back(e.back_distance.begin(),
                                                e.back_distance.end());
    std::sort(back.begin(), back.end());
    if (back.size() > max_count)
        throw CheckpointError(
            "live-point write: back-distance map too large");
    putU32(os, std::uint32_t(back.size()));
    for (const auto &[line, dist] : back) {
        putU64(os, line);
        putU64(os, dist);
    }

    if (e.unresolved.size() > max_count)
        throw CheckpointError(
            "live-point write: unresolved list too large");
    putU32(os, std::uint32_t(e.unresolved.size()));
    for (const auto line : e.unresolved)
        putU64(os, line);

    for (const auto v : e.found_by)
        putU64(os, v);
    for (const auto v : e.dp_traps)
        putU64(os, v);
    for (const auto v : e.dp_false_positives)
        putU64(os, v);
    for (const auto v : e.vicinity_traps)
        putU64(os, v);
    for (const auto v : e.vicinity_false_positives)
        putU64(os, v);
    for (const auto v : e.window_insts)
        putU64(os, v);
    putU64(os, e.vicinity_samples);

    putHistogram(os, e.vicinity.events());
    putHistogram(os, e.vicinity.censoredHist());
}

LivePointWindow
getWindow(std::istream &is, const sampling::RegionSchedule &sched)
{
    LivePointWindow w;
    w.region = getU32(is);
    if (w.region >= sched.num_regions)
        throw CheckpointError("live-point file: window region index "
                              "out of range");
    w.warming_start = getU64(is);
    if (w.warming_start != sched.warmingStart(w.region))
        throw CheckpointError("live-point file: window trace offset "
                              "disagrees with the recorded schedule");

    // --- KeySet ---------------------------------------------------------
    core::KeySet &keys = w.warm.keys;
    keys.region_refs = getU64(is);
    const std::uint32_t n_keys = getU32(is);
    if (n_keys > max_count)
        throw CheckpointError("live-point file: implausible key count");
    keys.keys.reserve(n_keys);
    for (std::uint32_t i = 0; i < n_keys; ++i) {
        core::KeyAccess k;
        k.line = getU64(is);
        k.first_offset = getU64(is);
        k.pc = getU64(is);
        const std::uint8_t flags = getU8(is);
        if (flags & ~std::uint8_t(3))
            throw CheckpointError(
                "live-point file: unknown key flags");
        k.write = flags & 1;
        k.lukewarm_hit = flags & 2;
        keys.keys.push_back(k);
    }

    // --- ExplorerResult -------------------------------------------------
    core::ExplorerResult &e = w.warm.explored;
    e.engaged = getU32(is);
    if (e.engaged > 4)
        throw CheckpointError(
            "live-point file: implausible explorer engagement");

    const std::uint32_t n_back = getU32(is);
    if (n_back > max_count)
        throw CheckpointError(
            "live-point file: implausible back-distance count");
    e.back_distance.reserve(n_back);
    Addr prev_line = 0;
    for (std::uint32_t i = 0; i < n_back; ++i) {
        const Addr line = getU64(is);
        if (i > 0 && line <= prev_line)
            throw CheckpointError("live-point file: back-distance "
                                  "entries out of order");
        prev_line = line;
        e.back_distance.emplace(line, getU64(is));
    }

    const std::uint32_t n_unresolved = getU32(is);
    if (n_unresolved > max_count)
        throw CheckpointError(
            "live-point file: implausible unresolved count");
    e.unresolved.reserve(n_unresolved);
    for (std::uint32_t i = 0; i < n_unresolved; ++i)
        e.unresolved.push_back(getU64(is));

    for (auto &v : e.found_by)
        v = getU64(is);
    for (auto &v : e.dp_traps)
        v = getU64(is);
    for (auto &v : e.dp_false_positives)
        v = getU64(is);
    for (auto &v : e.vicinity_traps)
        v = getU64(is);
    for (auto &v : e.vicinity_false_positives)
        v = getU64(is);
    for (auto &v : e.window_insts)
        v = getU64(is);
    e.vicinity_samples = getU64(is);

    LogHistogram events = getHistogram(is);
    LogHistogram censored = getHistogram(is);
    e.vicinity = statmodel::ReuseHistogram(std::move(events),
                                           std::move(censored));
    return w;
}

} // namespace

batch::CacheKey
livePointKey(const std::string &spec,
             const core::DeloreanConfig &config)
{
    // Early-stop knobs are normalized to their defaults: live-points
    // persist warm state, which is valid under any stopping rule. The
    // workload identity (content digest for file-backed specs) and
    // every other result-shaping field stay in the key.
    core::DeloreanConfig normalized = config;
    const core::DeloreanConfig defaults;
    normalized.confidence = defaults.confidence;
    normalized.target_error = defaults.target_error;
    normalized.window_seed = defaults.window_seed;
    normalized.min_windows = defaults.min_windows;
    normalized.livepoint_file.clear();
    return batch::KeyBuilder()
        .workload(spec)
        .str("livepoints")
        .config(normalized)
        .key();
}

void
writeLivePoints(std::ostream &os, const LivePointFile &file)
{
    const auto &sched = file.schedule;
    if (file.windows.empty() ||
        file.windows.size() > sched.num_regions)
        throw CheckpointError("live-point write: windows must form a "
                              "non-empty prefix of the schedule");

    putBytes(os, LivePointFormat::magic.data(),
             LivePointFormat::magic.size());
    putU32(os, LivePointFormat::version);
    putU32(os, 0); // reserved
    putU64(os, file.key.hi);
    putU64(os, file.key.lo);
    putStr(os, file.workload);
    putU32(os, sched.num_regions);
    putU64(os, sched.spacing);
    putU64(os, sched.region_len);
    putU64(os, sched.detailed_warming);
    putU32(os, std::uint32_t(file.windows.size()));
    for (const auto &w : file.windows)
        putWindow(os, w);
    os.flush();
    if (!os)
        throw CheckpointError("live-point write failed");
}

LivePointFile
readLivePoints(std::istream &is)
{
    std::array<char, 8> magic;
    getBytes(is, magic.data(), magic.size());
    if (magic != LivePointFormat::magic)
        throw CheckpointError("live-point file: bad magic");
    const std::uint32_t version = getU32(is);
    if (version != LivePointFormat::version)
        throw CheckpointError(
            "live-point file: unsupported version " +
            std::to_string(version));
    if (getU32(is) != 0)
        throw CheckpointError(
            "live-point file: nonzero reserved header field");

    LivePointFile file;
    file.key.hi = getU64(is);
    file.key.lo = getU64(is);
    file.workload = getStr(is);
    file.schedule.num_regions = getU32(is);
    file.schedule.spacing = getU64(is);
    file.schedule.region_len = getU64(is);
    file.schedule.detailed_warming = getU64(is);
    if (file.schedule.num_regions == 0 ||
        file.schedule.num_regions > max_count ||
        file.schedule.region_len == 0 ||
        file.schedule.spacing <= file.schedule.region_len +
                                     file.schedule.detailed_warming)
        throw CheckpointError(
            "live-point file: invalid recorded schedule");

    const std::uint32_t n_windows = getU32(is);
    if (n_windows == 0 || n_windows > file.schedule.num_regions)
        throw CheckpointError(
            "live-point file: window count is not a non-empty prefix "
            "of the recorded schedule");
    file.windows.reserve(n_windows);
    for (std::uint32_t i = 0; i < n_windows; ++i) {
        LivePointWindow w = getWindow(is, file.schedule);
        if (w.region != i)
            throw CheckpointError("live-point file: windows out of "
                                  "region order");
        file.windows.push_back(std::move(w));
    }
    if (is.peek() != std::istream::traits_type::eof())
        throw CheckpointError("live-point file: trailing bytes");
    return file;
}

LivePointFile
recordLivePoints(const std::string &spec,
                 const core::DeloreanConfig &config)
{
    auto trace = workload::makeTrace(spec);
    sampling::TraceCheckpointer checkpoints(*trace);
    checkpoints.prepare(core::DeloreanMethod::checkpointPositions(config));
    const core::WarmupArtifacts artifacts =
        core::DeloreanMethod::warmup(*trace, config, checkpoints,
                                     config.hier);

    LivePointFile file;
    file.key = livePointKey(spec, config);
    file.workload = trace->name();
    file.schedule = config.schedule;
    file.windows.reserve(artifacts.keys.size());
    for (std::size_t r = 0; r < artifacts.keys.size(); ++r) {
        LivePointWindow w;
        w.region = std::uint32_t(r);
        w.warming_start = config.schedule.warmingStart(unsigned(r));
        w.warm.keys = artifacts.keys[r];
        w.warm.explored = artifacts.explored[r];
        file.windows.push_back(std::move(w));
    }
    return file;
}

void
writeLivePointFile(const std::string &path, const LivePointFile &file)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw CheckpointError("cannot write live-point file '" +
                                  tmp + "'");
        writeLivePoints(os, file);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot publish live-point file '" +
                              path + "'");
    }
}

LivePointFile
readLivePointFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw CheckpointError("cannot open live-point file '" + path +
                              "'");
    return readLivePoints(is);
}

namespace
{

/** loadForRun/loadPrefixForRun's shared validation. */
std::vector<core::RegionWarm>
loadValidated(const std::string &spec,
              const core::DeloreanConfig &config,
              const std::string &path)
{
    LivePointFile file = readLivePointFile(path);

    const auto &want = config.schedule;
    const auto &have = file.schedule;
    if (have.num_regions != want.num_regions ||
        have.spacing != want.spacing ||
        have.region_len != want.region_len ||
        have.detailed_warming != want.detailed_warming)
        throw CheckpointError(
            "live-point file '" + path +
            "' was recorded for a different region schedule");

    const batch::CacheKey expected = livePointKey(spec, config);
    if (!(file.key == expected))
        throw CheckpointError(
            "live-point file '" + path + "' (key " + file.key.hex() +
            ") does not match workload/config (key " + expected.hex() +
            "): the trace was re-recorded or the configuration "
            "changed; re-record the live-points");

    std::vector<core::RegionWarm> warm;
    warm.reserve(file.windows.size());
    for (auto &w : file.windows)
        warm.push_back(std::move(w.warm));
    return warm;
}

} // namespace

std::vector<core::RegionWarm>
loadForRun(const std::string &spec, const core::DeloreanConfig &config,
           const std::string &path)
{
    std::vector<core::RegionWarm> warm =
        loadValidated(spec, config, path);
    if (warm.size() != config.schedule.num_regions)
        throw CheckpointError(
            "live-point file '" + path + "' holds a " +
            std::to_string(warm.size()) + "-window prefix of the " +
            std::to_string(config.schedule.num_regions) +
            "-region schedule; resume it through a DeloreanSession "
            "(loadPrefixForRun)");
    return warm;
}

std::vector<core::RegionWarm>
loadPrefixForRun(const std::string &spec,
                 const core::DeloreanConfig &config,
                 const std::string &path)
{
    return loadValidated(spec, config, path);
}

LivePointFile
sessionLivePoints(const core::DeloreanSession &session,
                  const std::string &spec)
{
    if (session.windowsFed() == 0)
        throw CheckpointError(
            "cannot suspend a session before any fed window");

    const core::DeloreanConfig &config = session.config();
    LivePointFile file;
    file.key = livePointKey(spec, config);
    file.workload = session.benchmark();
    file.schedule = config.schedule;
    const auto &warm = session.warmWindows();
    file.windows.reserve(warm.size());
    for (std::size_t r = 0; r < warm.size(); ++r) {
        LivePointWindow w;
        w.region = std::uint32_t(r);
        w.warming_start = config.schedule.warmingStart(unsigned(r));
        w.warm = warm[r];
        file.windows.push_back(std::move(w));
    }
    return file;
}

} // namespace delorean::checkpoint
