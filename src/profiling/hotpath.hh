/**
 * @file
 * Lightweight hot-path phase timers (measured host wall-clock).
 *
 * Everything else in src/profiling models the *paper's* host; this file
 * measures *ours*. Each expensive phase of a method run — the Scout
 * scan, every Explorer's checkpoint-replay window, the vicinity
 * sampling pass over those windows, the StatStack solver precompute,
 * and the Analyst's detailed simulation — is wrapped in a scoped timer
 * whose nanoseconds land in a PhaseTimings bucket, together with a call
 * count and the number of instructions (or work items) processed, so
 * throughput (insts/s) can be derived per phase.
 *
 * Two rules keep the timers honest and cheap:
 *
 *  - timings are plumbed *by value* through the structs the phases
 *    already produce (KeySet, ExplorerResult, HostCostAccount) and
 *    merged where those structs merge — no global registry, so
 *    concurrent runs (batch cells on a thread pool) can never
 *    mis-attribute each other's time;
 *  - timers wrap whole windows/regions, never single accesses: the
 *    replay inner loop runs batches of thousands of instructions
 *    between clock reads, so measurement overhead is unobservable.
 *
 * Measured wall-clock is inherently nondeterministic, so PhaseTimings
 * deliberately opts out of the bit-identity relation: its operator== is
 * identically true. Structs carrying it keep their *defaulted*
 * operator== meaningful (parallel-vs-serial and cached-vs-direct runs
 * still compare equal bitwise on every modeled statistic), and the
 * batch cache key never sees timings at all — like
 * DeloreanConfig::host_threads, they are an artifact of the run, not an
 * input to it (docs/performance.md).
 */

#ifndef DELOREAN_PROFILING_HOTPATH_HH
#define DELOREAN_PROFILING_HOTPATH_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "base/types.hh"

namespace delorean::profiling
{

/** The measured hot-path phases, in pipeline order. */
enum class HotPhase : std::uint8_t
{
    Scout = 0,         //!< Scout::scan (warming replay + region scan)
    ExplorerReplay,    //!< Explorer window re-execution + directed profiling
    Vicinity,          //!< vicinity reuse sampling over the same windows
    StatStackSolve,    //!< StatStack segment precompute (Analyst setup)
    Analyze,           //!< detailed warming + timed simulation
};

constexpr std::size_t hot_phase_count = 5;

/** Stable lower-case identifier ("explorer_replay") for reports. */
const char *hotPhaseName(HotPhase phase);

/** Monotonic clock read in nanoseconds (steady_clock). */
inline double
nowNs()
{
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/**
 * Measured wall-clock per hot phase plus work counters. Carried beside
 * modeled results; see the file comment for why operator== is
 * identically true.
 */
struct PhaseTimings
{
    /** Wall nanoseconds spent in each phase. */
    std::array<double, hot_phase_count> ns{};

    /** Timer activations per phase (windows, regions, ...). */
    std::array<Counter, hot_phase_count> calls{};

    /** Work items processed per phase (instructions unless noted). */
    std::array<Counter, hot_phase_count> items{};

    void
    note(HotPhase phase, double nanoseconds, Counter work_items = 0)
    {
        const auto p = std::size_t(phase);
        ns[p] += nanoseconds;
        calls[p] += 1;
        items[p] += work_items;
    }

    void
    merge(const PhaseTimings &other)
    {
        for (std::size_t p = 0; p < hot_phase_count; ++p) {
            ns[p] += other.ns[p];
            calls[p] += other.calls[p];
            items[p] += other.items[p];
        }
    }

    double
    totalNs() const
    {
        double t = 0.0;
        for (const double v : ns)
            t += v;
        return t;
    }

    /** Work items per second for @p phase (0 when unmeasured). */
    double itemsPerSecond(HotPhase phase) const;

    /**
     * Identically true: measured time is nondeterministic and must
     * never participate in the bit-identity relation of the structs
     * that carry it (MethodResult, HostCostAccount, ExplorerResult).
     */
    bool
    operator==(const PhaseTimings &) const
    {
        return true;
    }
};

/**
 * RAII phase timer: measures from construction to destruction (or
 * stop()) and notes the elapsed time into a PhaseTimings sink.
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(PhaseTimings &sink, HotPhase phase,
                     Counter work_items = 0)
        : sink_(sink), phase_(phase), items_(work_items), start_(nowNs())
    {}

    ~ScopedPhaseTimer() { stop(); }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

    /** Add work items discovered while the timer runs. */
    void addItems(Counter n) { items_ += n; }

    /** Note the elapsed time now; the destructor becomes a no-op. */
    void
    stop()
    {
        if (stopped_)
            return;
        stopped_ = true;
        sink_.note(phase_, nowNs() - start_, items_);
    }

  private:
    PhaseTimings &sink_;
    HotPhase phase_;
    Counter items_;
    double start_;
    bool stopped_ = false;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_HOTPATH_HH
