/**
 * @file
 * Vicinity reuse-distance sampling.
 *
 * DSW converts key reuse distances into stack distances with StatStack,
 * which needs the reuse-distance distribution of the accesses *around*
 * the key reuses (paper §3.1.1, Figure 2). That distribution is
 * approximated by sparsely sampling random accesses during the Explorer
 * windows — the paper's default is one sample per 100 k memory
 * instructions (scaled by S here), an order of magnitude sparser than
 * RSW because it only needs the average behaviour, not per-PC detail.
 */

#ifndef DELOREAN_PROFILING_VICINITY_HH
#define DELOREAN_PROFILING_VICINITY_HH

#include "base/flat_hash.hh"
#include "base/random.hh"
#include "profiling/watchpoint.hh"
#include "statmodel/reuse_histogram.hh"

namespace delorean::profiling
{

/**
 * Sparse forward-reuse sampler accumulating a single global histogram.
 * Like RswSampler but without per-PC bookkeeping and with a fixed rate;
 * watchpoint (page-granularity) cost accounting applies in virtualized
 * mode.
 */
class VicinitySampler
{
  public:
    /**
     * @param period mean memory references between samples (already
     *               scaled by the caller)
     * @param seed   RNG stream seed
     */
    explicit VicinitySampler(std::uint64_t period,
                             std::uint64_t seed = 0x71c1);

    /**
     * Start a window.
     * @param virtualized watchpoint-based (traps counted) vs functional
     */
    void beginWindow(bool virtualized);

    /** Present one memory access inside the window. */
    void observe(Addr line);

    /**
     * Present a dense batch of memory-access lines (stream order) —
     * result-identical to observe() per line, but stretches with no
     * sample in flight and the next sample point still ahead advance
     * in one bound (the sampler is pure position arithmetic there).
     */
    void observeAll(const Addr *lines, std::size_t n);

    /** Close the window, censoring in-flight samples. */
    void endWindow();

    /** Accumulated distribution across all windows so far. */
    const statmodel::ReuseHistogram &histogram() const { return hist_; }

    Counter samples() const { return hist_.samples(); }
    Counter traps() const { return traps_; }
    Counter falsePositives() const { return false_positives_; }

    void clear();

  private:
    void armNext();

    std::uint64_t period_;
    Rng rng_;
    bool virtualized_ = false;

    WatchpointEngine engine_;
    FlatAddrMap<RefCount> inflight_; //!< line -> sample position
    statmodel::ReuseHistogram hist_;

    RefCount pos_ = 0;
    RefCount window_start_ = 0;
    RefCount next_sample_ = 0;
    Counter traps_ = 0;
    Counter false_positives_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_VICINITY_HH
