#include "profiling/directed_profiler.hh"

#include <algorithm>

#include "base/logging.hh"

namespace delorean::profiling
{

void
DirectedProfiler::begin(const std::vector<Addr> &keys, bool virtualized)
{
    virtualized_ = virtualized;
    engine_.clear();
    engine_.resetStats();
    last_seen_.clear();
    last_seen_.reserve(keys.size());
    pos_ = 0;

    key_filter_.reset();

    for (const Addr line : keys) {
        last_seen_.emplace(line, never);
        if (virtualized_)
            engine_.watchLine(line);
        else
            key_filter_.set(line);
    }
}

DirectedProfileResult
DirectedProfiler::end()
{
    DirectedProfileResult res;
    res.traps = engine_.traps();
    res.false_positives = engine_.falsePositives();
    res.back_distance.reserve(last_seen_.size());

    // Flat-table slot order, not insertion order: both consumers are
    // order-insensitive (a map and a set-like remainder vector).
    last_seen_.forEach([&](Addr line, RefCount last) {
        if (last == never)
            res.unresolved.push_back(line);
        else
            res.back_distance.emplace(line, pos_ - last);
    });

    engine_.clear();
    last_seen_.clear();
    return res;
}

} // namespace delorean::profiling
