#include "profiling/host_cost.hh"

#include <sstream>

#include "base/logging.hh"

namespace delorean::profiling
{

HostCostAccount::HostCostAccount(const HostCostParams &params)
    : params_(params)
{
    fatal_if(params.host_ghz <= 0.0, "host clock must be positive");
    fatal_if(params.scale < 1.0, "scale factor must be >= 1");
}

void
HostCostAccount::chargeVffScaled(InstCount insts)
{
    const double c = double(insts) * params_.scale * params_.vff_cpi;
    vff_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::chargeAtomicScaled(InstCount insts)
{
    const double c = double(insts) * params_.scale * params_.atomic_cpi;
    functional_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::chargeAtomicRaw(InstCount insts)
{
    const double c = double(insts) * params_.atomic_cpi;
    functional_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::chargeFwScaled(InstCount insts)
{
    const double c = double(insts) * params_.scale * params_.fw_cpi;
    functional_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::chargeDetailedRaw(InstCount insts)
{
    const double c = double(insts) * params_.detailed_cpi;
    detailed_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::chargeTraps(Counter traps)
{
    const double c = double(traps) * params_.trap_cycles;
    traps_ += c;
    trap_count_ += traps;
    total_cycles_ += c;
}

void
HostCostAccount::chargeTrapsScaled(Counter traps)
{
    const double scaled = double(traps) * params_.scale;
    const double c = scaled * params_.trap_cycles;
    traps_ += c;
    trap_count_ += Counter(scaled);
    total_cycles_ += c;
}

void
HostCostAccount::chargeStateTransfers(Counter transfers)
{
    const double c = double(transfers) * params_.state_transfer_cycles;
    transfers_ += c;
    total_cycles_ += c;
}

void
HostCostAccount::merge(const HostCostAccount &other)
{
    vff_ += other.vff_;
    functional_ += other.functional_;
    detailed_ += other.detailed_;
    traps_ += other.traps_;
    transfers_ += other.transfers_;
    total_cycles_ += other.total_cycles_;
    trap_count_ += other.trap_count_;
    measured_.merge(other.measured_);
}

double
HostCostAccount::seconds() const
{
    return total_cycles_ / (params_.host_ghz * 1e9);
}

std::string
HostCostAccount::breakdown() const
{
    const double ghz = params_.host_ghz * 1e9;
    std::ostringstream os;
    os << "vff=" << vff_ / ghz << "s functional=" << functional_ / ghz
       << "s detailed=" << detailed_ / ghz << "s traps=" << traps_ / ghz
       << "s (" << trap_count_ << ") transfers=" << transfers_ / ghz
       << "s total=" << seconds() << "s";
    return os.str();
}

HostCostSnapshot
HostCostAccount::snapshot() const
{
    HostCostSnapshot snap;
    snap.params = params_;
    snap.vff = vff_;
    snap.functional = functional_;
    snap.detailed = detailed_;
    snap.traps = traps_;
    snap.transfers = transfers_;
    snap.total_cycles = total_cycles_;
    snap.trap_count = trap_count_;
    snap.measured = measured_;
    return snap;
}

HostCostAccount
HostCostAccount::fromSnapshot(const HostCostSnapshot &snap)
{
    HostCostAccount account(snap.params);
    account.vff_ = snap.vff;
    account.functional_ = snap.functional;
    account.detailed_ = snap.detailed;
    account.traps_ = snap.traps;
    account.transfers_ = snap.transfers;
    account.total_cycles_ = snap.total_cycles;
    account.trap_count_ = snap.trap_count;
    account.measured_ = snap.measured;
    return account;
}

double
modeledMips(InstCount simulated_insts, double scale, double seconds)
{
    if (seconds <= 0.0)
        return 0.0;
    return double(simulated_insts) * scale / 1e6 / seconds;
}

} // namespace delorean::profiling
