#include "profiling/rsw_sampler.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace delorean::profiling
{

RswSchedule
RswSchedule::coolsim(double scale)
{
    fatal_if(scale < 1.0, "RswSchedule: scale must be >= 1");
    const auto scaled = [scale](std::uint64_t period) {
        return std::max<std::uint64_t>(
            1, std::uint64_t(std::llround(double(period) / scale)));
    };
    RswSchedule s;
    s.segments = {{0.75, scaled(40'000)},
                  {0.20, scaled(20'000)},
                  {0.05, scaled(10'000)}};
    return s;
}

std::uint64_t
RswSchedule::periodAt(double frac) const
{
    double acc = 0.0;
    for (const auto &seg : segments) {
        acc += seg.fraction;
        if (frac < acc)
            return seg.period;
    }
    return segments.empty() ? 0 : segments.back().period;
}

void
RswSchedule::validate() const
{
    fatal_if(segments.empty(), "RswSchedule: no segments");
    double total = 0.0;
    for (const auto &seg : segments) {
        fatal_if(seg.fraction <= 0.0, "RswSchedule: non-positive segment");
        fatal_if(seg.period == 0, "RswSchedule: zero period");
        total += seg.fraction;
    }
    fatal_if(std::abs(total - 1.0) > 1e-9,
             "RswSchedule: fractions sum to %f, expected 1", total);
}

RswSampler::RswSampler(const RswSchedule &schedule, std::uint64_t seed)
    : schedule_(schedule), rng_(seed)
{
    schedule_.validate();
}

void
RswSampler::beginInterval()
{
    panic_if(!inflight_.empty(),
             "RswSampler::beginInterval with watchpoints still armed");
    inst_pos_ = 0;
    ref_pos_ = 0;
    armNext(0.0);
}

void
RswSampler::armNext(double frac)
{
    const std::uint64_t period = schedule_.periodAt(frac);
    next_sample_ = inst_pos_ + rng_.nextGeometric(period);
}

void
RswSampler::observe(Addr pc, Addr line, double frac)
{
    // Watchpoint check first: a protected page traps regardless of what
    // the access is (native execution between traps).
    if (engine_.active()) {
        if (engine_.access(line) == Trap::Hit) {
            const auto it = inflight_.find(line);
            if (it != inflight_.end()) {
                // Forward reuse: attribute the distance to the reusing
                // access's PC (that is the access whose hit/miss RSW
                // later predicts).
                profile_.addReuse(pc, ref_pos_ - it->second.set_at);
                inflight_.erase(it);
            }
            engine_.unwatchLine(line);
        }
    }

    if (inst_pos_ >= next_sample_) {
        // This access is a sample point: watch its line for the next
        // reuse, unless it is already being tracked.
        if (inflight_.try_emplace(line, InFlight{ref_pos_, pc}).second)
            engine_.watchLine(line);
        armNext(frac);
    }

    ++ref_pos_;
    ++inst_pos_;
}

void
RswSampler::endInterval()
{
    for (const auto &[line, info] : inflight_) {
        // No reuse before the detailed region: censored observation with
        // a lower bound of the remaining interval.
        profile_.addCensored(info.set_pc, ref_pos_ - info.set_at);
    }
    inflight_.clear();
    engine_.clear();
}

} // namespace delorean::profiling
