/**
 * @file
 * Randomized statistical warming (RSW) sampler — the CoolSim mechanism.
 *
 * During the warm-up interval before each detailed region, RSW picks
 * memory accesses at random (one per sampling period), sets a watchpoint
 * on the accessed cacheline, and measures the *forward* reuse distance to
 * the next access of that line. CoolSim's best configuration uses an
 * adaptive schedule: sparse sampling early in the interval, denser close
 * to the region (paper §6: 1/40k for the first 75% of the interval,
 * 1/20k for the next 20%, 1/10k for the final 5%, with periods divided by
 * the scale factor S here so per-region sample counts match the paper).
 *
 * Watchpoints have page granularity, so every access to a protected page
 * traps (cost) even when it is not a reuse — the false positives the
 * paper discusses.
 */

#ifndef DELOREAN_PROFILING_RSW_SAMPLER_HH
#define DELOREAN_PROFILING_RSW_SAMPLER_HH

#include <unordered_map>
#include <vector>

#include "base/random.hh"
#include "profiling/watchpoint.hh"
#include "statmodel/reuse_histogram.hh"

namespace delorean::profiling
{

/** Adaptive sampling schedule over a warm-up interval. */
struct RswSchedule
{
    struct Segment
    {
        double fraction;       //!< share of the warm-up interval
        std::uint64_t period;  //!< mean memory refs between samples
    };

    std::vector<Segment> segments;

    /**
     * CoolSim's published best configuration, with sampling periods
     * scaled down by @p scale so per-region sample counts stay at paper
     * magnitude (DESIGN.md §5).
     */
    static RswSchedule coolsim(double scale);

    /** Period active at @p frac (0..1) through the interval. */
    std::uint64_t periodAt(double frac) const;

    void validate() const;
};

/**
 * One warm-up interval's worth of RSW sampling.
 *
 * Usage: beginInterval(); observe() for every memory access of the
 * interval; endInterval() to censor unresolved watchpoints. The collected
 * per-PC reuse profile feeds CoolSim's statistical classifier.
 */
class RswSampler
{
  public:
    explicit RswSampler(const RswSchedule &schedule,
                        std::uint64_t seed = 0xc001);

    /** Arm for a new warm-up interval. */
    void beginInterval();

    /**
     * Advance the instruction clock by one non-memory instruction.
     * Sampling periods count *instructions* (CoolSim's published
     * schedule yields ~34 k samples per 1 B-instruction interval, which
     * is the Figure 6 count), while reuse distances are recorded in
     * memory references.
     */
    void tick() { ++inst_pos_; }

    /**
     * Present one memory access (with its PC) to the sampler; also
     * advances the instruction clock.
     *
     * @param frac position within the warm-up interval in [0, 1]
     */
    void observe(Addr pc, Addr line, double frac);

    /** Censor in-flight watchpoints at the end of the interval. */
    void endInterval();

    /** Collected distribution (valid after endInterval()). */
    const statmodel::PcReuseProfile &profile() const { return profile_; }

    /** Reuse distances collected (incl. censored) — the Figure 6 count. */
    Counter samples() const { return profile_.samples(); }

    Counter traps() const { return engine_.traps(); }
    Counter falsePositives() const { return engine_.falsePositives(); }

    /** Drop the collected profile (new region). */
    void clearProfile() { profile_.clear(); }

  private:
    void armNext(double frac);

    RswSchedule schedule_;
    Rng rng_;
    WatchpointEngine engine_;
    statmodel::PcReuseProfile profile_;

    struct InFlight
    {
        RefCount set_at;
        Addr set_pc;
    };
    std::unordered_map<Addr, InFlight> inflight_;

    InstCount inst_pos_ = 0;   //!< instruction clock (sampling periods)
    RefCount ref_pos_ = 0;     //!< memory-reference clock (distances)
    InstCount next_sample_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_RSW_SAMPLER_HH
