// ReuseProfiler is header-only for inlining in the hot profiling loops;
// this translation unit anchors the module in the build.
#include "profiling/reuse_profiler.hh"
