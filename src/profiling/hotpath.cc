#include "profiling/hotpath.hh"

namespace delorean::profiling
{

const char *
hotPhaseName(HotPhase phase)
{
    switch (phase) {
      case HotPhase::Scout:
        return "scout";
      case HotPhase::ExplorerReplay:
        return "explorer_replay";
      case HotPhase::Vicinity:
        return "vicinity";
      case HotPhase::StatStackSolve:
        return "statstack_solve";
      case HotPhase::Analyze:
        return "analyze";
    }
    return "unknown";
}

double
PhaseTimings::itemsPerSecond(HotPhase phase) const
{
    const auto p = std::size_t(phase);
    if (ns[p] <= 0.0)
        return 0.0;
    return double(items[p]) * 1e9 / ns[p];
}

} // namespace delorean::profiling
