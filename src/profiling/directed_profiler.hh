/**
 * @file
 * Directed profiling (DP): measuring key reuse distances.
 *
 * An Explorer must find, for each key cacheline, the *last* access before
 * the detailed region within its window. Two implementations mirror the
 * paper's §3.3:
 *
 *  - functional DP (Explorer-1): functional simulation sees every access,
 *    so last-access tracking is exact and trap-free — but costs
 *    atomic-simulation speed per instruction;
 *  - virtualized DP (Explorers 2-4): native-speed execution with
 *    page-protection watchpoints. The watchpoint for a key line must stay
 *    armed for the whole window (we need the LAST access), so every
 *    access to a watched line — and every false positive on its page —
 *    traps. This is exactly why a naive single-pass DSW implementation is
 *    slow and Time Traveling's multi-pass structure is needed.
 */

#ifndef DELOREAN_PROFILING_DIRECTED_PROFILER_HH
#define DELOREAN_PROFILING_DIRECTED_PROFILER_HH

#include <unordered_map>
#include <vector>

#include "base/flat_hash.hh"
#include "profiling/watchpoint.hh"

namespace delorean::profiling
{

/** Result of one directed-profiling window. */
struct DirectedProfileResult
{
    /**
     * For each key line found: distance (in memory references) from its
     * last access in the window back to the window end (= the start of
     * the detailed warming). The Analyst adds the in-region offset to
     * obtain the full key reuse distance.
     */
    std::unordered_map<Addr, RefCount> back_distance;

    /** Key lines with no access inside the window. */
    std::vector<Addr> unresolved;

    /** Watchpoint stops incurred (0 for functional DP). */
    Counter traps = 0;
    Counter false_positives = 0;
};

/**
 * One directed-profiling window over a set of key cachelines.
 *
 * Usage: begin(keys, virtualized); observe() for every memory access in
 * the window; end() to collect results.
 */
class DirectedProfiler
{
  public:
    /**
     * Arm the profiler.
     * @param keys        key cachelines to track
     * @param virtualized use watchpoints (trap accounting) instead of
     *                    functional observation
     */
    void begin(const std::vector<Addr> &keys, bool virtualized);

    /** Present one memory access inside the window. */
    void
    observe(Addr line)
    {
        if (virtualized_) {
            // The engine's page prefilter screens this probe.
            if (engine_.active() &&
                engine_.access(line) == Trap::Hit) {
                // Keep the watchpoint armed: a later access would
                // supersede this one as the "last" access.
                *last_seen_.find(line) = pos_;
            }
        } else {
            // Functional DP sees every access; the key-line bitmap
            // (no false negatives) screens the table probe, so the
            // common non-key access costs one load and a bit test.
            if (key_filter_.mayContain(line)) {
                if (RefCount *last = last_seen_.find(line))
                    *last = pos_;
            }
        }
        ++pos_;
    }

    /**
     * Present a dense batch of memory-access lines (stream order) —
     * one call per replay chunk, bit-identical to observe() per line
     * (same screens, same statistics, same positions) but with the
     * page/key prefilter probes hashed in SIMD batches: the
     * overwhelmingly common all-clear chunk never touches the exact
     * tables. The engine is never re-armed mid-window, so hoisting
     * the active() test out of the loop is exact too.
     */
    void
    observeAll(const Addr *lines, std::size_t n)
    {
        constexpr std::size_t batch = 256;
        std::uint8_t may[batch];
        if (virtualized_) {
            if (!engine_.active()) {
                pos_ += n;
                return;
            }
            while (n > 0) {
                const std::size_t b = n < batch ? n : batch;
                engine_.prefilterPages(lines, b, may);
                for (std::size_t i = 0; i < b; ++i) {
                    if (may[i] && engine_.accessPrefiltered(lines[i]) ==
                                      Trap::Hit) {
                        *last_seen_.find(lines[i]) = pos_;
                    }
                    ++pos_;
                }
                lines += b;
                n -= b;
            }
        } else {
            while (n > 0) {
                const std::size_t b = n < batch ? n : batch;
                key_filter_.mayContainAll(lines, b, may);
                for (std::size_t i = 0; i < b; ++i) {
                    if (may[i]) {
                        if (RefCount *last = last_seen_.find(lines[i]))
                            *last = pos_;
                    }
                    ++pos_;
                }
                lines += b;
                n -= b;
            }
        }
    }

    /** Finish the window and report distances/unresolved keys. */
    DirectedProfileResult end();

    RefCount position() const { return pos_; }

  private:
    bool virtualized_ = false;
    WatchpointEngine engine_;
    /** Bit-packed key-line prefilter (functional mode's fast no). */
    AddrBitFilter key_filter_;
    /**
     * key line -> last access position in the window (sentinel: none).
     * Open-addressed flat table: one probe per memory reference of a
     * functional window makes this the replay loop's hottest lookup
     * (tests/test_profiling.cc asserts bit-identity against a
     * reference unordered_map on randomized key sets).
     */
    FlatAddrMap<RefCount> last_seen_;
    static constexpr RefCount never = ~RefCount(0);
    RefCount pos_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_DIRECTED_PROFILER_HH
