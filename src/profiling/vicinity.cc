#include "profiling/vicinity.hh"

#include <algorithm>

#include "base/logging.hh"

namespace delorean::profiling
{

VicinitySampler::VicinitySampler(std::uint64_t period, std::uint64_t seed)
    : period_(period), rng_(seed)
{
    fatal_if(period == 0, "VicinitySampler: period must be >= 1");
}

void
VicinitySampler::beginWindow(bool virtualized)
{
    panic_if(!inflight_.empty(),
             "VicinitySampler::beginWindow with samples in flight");
    virtualized_ = virtualized;
    window_start_ = pos_;
    armNext();
}

void
VicinitySampler::armNext()
{
    next_sample_ = pos_ + rng_.nextGeometric(period_);
}

void
VicinitySampler::observe(Addr line)
{
    if (!inflight_.empty()) {
        bool is_reuse = false;
        if (virtualized_) {
            if (engine_.active()) {
                const Trap t = engine_.access(line);
                if (t != Trap::None)
                    ++traps_;
                if (t == Trap::FalsePositive)
                    ++false_positives_;
                is_reuse = t == Trap::Hit;
            }
        } else {
            is_reuse = inflight_.contains(line);
        }
        if (is_reuse) {
            hist_.addReuse(pos_ - *inflight_.find(line));
            inflight_.erase(line);
            if (virtualized_)
                engine_.unwatchLine(line);
        }
    }

    if (pos_ >= next_sample_) {
        if (inflight_.emplace(line, pos_).second && virtualized_)
            engine_.watchLine(line);
        armNext();
    }

    ++pos_;
}

void
VicinitySampler::observeAll(const Addr *lines, std::size_t n)
{
    std::size_t i = 0;
    while (i < n) {
        if (inflight_.empty() && pos_ < next_sample_) {
            // Nothing armed and the next sample point still ahead:
            // each observe() would only increment pos_. Jump straight
            // to the sample point (or the end of the batch) — the RNG
            // stream and every sample decision are untouched, so this
            // is bit-identical to the per-access walk.
            const std::uint64_t gap = next_sample_ - pos_;
            const std::size_t jump = std::size_t(
                std::min<std::uint64_t>(gap, std::uint64_t(n - i)));
            pos_ += jump;
            i += jump;
            if (i >= n)
                break;
        }
        observe(lines[i]);
        ++i;
    }
}

void
VicinitySampler::endWindow()
{
    // Slot order, not insertion order: censored weights sum into
    // histogram buckets, which is order-insensitive bitwise (integer
    // weights well below 2^53).
    inflight_.forEach([this](Addr, RefCount set_at) {
        hist_.addCensored(pos_ - set_at);
    });
    inflight_.clear();
    engine_.clear();
}

void
VicinitySampler::clear()
{
    inflight_.clear();
    engine_.clear();
    hist_.clear();
    pos_ = 0;
    window_start_ = 0;
    traps_ = 0;
    false_positives_ = 0;
}

} // namespace delorean::profiling
