#include "profiling/vicinity.hh"

#include "base/logging.hh"

namespace delorean::profiling
{

VicinitySampler::VicinitySampler(std::uint64_t period, std::uint64_t seed)
    : period_(period), rng_(seed)
{
    fatal_if(period == 0, "VicinitySampler: period must be >= 1");
}

void
VicinitySampler::beginWindow(bool virtualized)
{
    panic_if(!inflight_.empty(),
             "VicinitySampler::beginWindow with samples in flight");
    virtualized_ = virtualized;
    window_start_ = pos_;
    armNext();
}

void
VicinitySampler::armNext()
{
    next_sample_ = pos_ + rng_.nextGeometric(period_);
}

void
VicinitySampler::observe(Addr line)
{
    if (!inflight_.empty()) {
        bool is_reuse = false;
        if (virtualized_) {
            if (engine_.active()) {
                const Trap t = engine_.access(line);
                if (t != Trap::None)
                    ++traps_;
                if (t == Trap::FalsePositive)
                    ++false_positives_;
                is_reuse = t == Trap::Hit;
            }
        } else {
            is_reuse = inflight_.count(line) != 0;
        }
        if (is_reuse) {
            const auto it = inflight_.find(line);
            hist_.addReuse(pos_ - it->second);
            inflight_.erase(it);
            if (virtualized_)
                engine_.unwatchLine(line);
        }
    }

    if (pos_ >= next_sample_) {
        if (inflight_.try_emplace(line, pos_).second && virtualized_)
            engine_.watchLine(line);
        armNext();
    }

    ++pos_;
}

void
VicinitySampler::endWindow()
{
    for (const auto &[line, set_at] : inflight_)
        hist_.addCensored(pos_ - set_at);
    inflight_.clear();
    engine_.clear();
}

void
VicinitySampler::clear()
{
    inflight_.clear();
    engine_.clear();
    hist_.clear();
    pos_ = 0;
    window_start_ = 0;
    traps_ = 0;
    false_positives_ = 0;
}

} // namespace delorean::profiling
