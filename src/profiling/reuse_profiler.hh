/**
 * @file
 * Exact reuse-distance profiler.
 *
 * Tracks the last access position of every cacheline and reports the
 * backward reuse distance (in memory references) of each access. Used
 * for ground truth in tests, and by the functional directed-profiling
 * path (Explorer-1), which sees every access.
 */

#ifndef DELOREAN_PROFILING_REUSE_PROFILER_HH
#define DELOREAN_PROFILING_REUSE_PROFILER_HH

#include <optional>
#include <unordered_map>

#include "base/types.hh"

namespace delorean::profiling
{

/**
 * Streaming exact reuse distances.
 */
class ReuseProfiler
{
  public:
    /**
     * Record an access to @p line.
     * @return the backward reuse distance (memory references since the
     *         previous access to the line), or nullopt for a first-ever
     *         access.
     */
    std::optional<std::uint64_t>
    observe(Addr line)
    {
        std::optional<std::uint64_t> rd;
        auto [it, inserted] = last_.try_emplace(line, pos_);
        if (!inserted) {
            rd = pos_ - it->second;
            it->second = pos_;
        }
        ++pos_;
        return rd;
    }

    /** Memory references observed so far. */
    RefCount position() const { return pos_; }

    /** Last access position of @p line, if ever seen. */
    std::optional<RefCount>
    lastAccess(Addr line) const
    {
        const auto it = last_.find(line);
        if (it == last_.end())
            return std::nullopt;
        return it->second;
    }

    /** Distinct lines seen. */
    std::size_t distinctLines() const { return last_.size(); }

    void
    clear()
    {
        last_.clear();
        pos_ = 0;
    }

  private:
    std::unordered_map<Addr, RefCount> last_;
    RefCount pos_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_REUSE_PROFILER_HH
