#include "profiling/watchpoint.hh"

#include <algorithm>

namespace delorean::profiling
{

void
WatchpointEngine::watchLine(Addr line)
{
    if (!lines_.emplace(line, 1).second)
        return; // already watched
    const Addr page = pageOfLine(line);
    *pages_.emplace(page, 0).first += 1;
    filter_.set(page);
}

void
WatchpointEngine::unwatchLine(Addr line)
{
    if (!lines_.erase(line))
        return;
    const Addr page = pageOfLine(line);
    std::uint32_t *count = pages_.find(page);
    if (count && --*count == 0)
        pages_.erase(page);
    // The filter bit stays set (other pages may hash to it); stale
    // bits only cost a redundant exact probe, never a wrong answer.
}

Trap
WatchpointEngine::accessProtected(Addr line, Addr page)
{
    if (!pages_.contains(page))
        return Trap::None; // stale/aliased filter bit

    ++traps_;
    if (lines_.contains(line)) {
        ++hits_;
        return Trap::Hit;
    }
    ++false_positives_;
    return Trap::FalsePositive;
}

bool
WatchpointEngine::watching(Addr line) const
{
    return lines_.contains(line);
}

void
WatchpointEngine::clear()
{
    pages_.clear();
    lines_.clear();
    filter_.reset();
}

void
WatchpointEngine::resetStats()
{
    traps_ = 0;
    false_positives_ = 0;
    hits_ = 0;
}

} // namespace delorean::profiling
