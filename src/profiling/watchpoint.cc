#include "profiling/watchpoint.hh"

#include <algorithm>

namespace delorean::profiling
{

void
WatchpointEngine::watchLine(Addr line)
{
    auto &lines = pages_[pageOfLine(line)];
    if (std::find(lines.begin(), lines.end(), line) != lines.end())
        return;
    lines.push_back(line);
    ++watched_lines_;
}

void
WatchpointEngine::unwatchLine(Addr line)
{
    const auto it = pages_.find(pageOfLine(line));
    if (it == pages_.end())
        return;
    auto &lines = it->second;
    const auto pos = std::find(lines.begin(), lines.end(), line);
    if (pos == lines.end())
        return;
    *pos = lines.back();
    lines.pop_back();
    --watched_lines_;
    if (lines.empty())
        pages_.erase(it);
}

Trap
WatchpointEngine::access(Addr line)
{
    const auto it = pages_.find(pageOfLine(line));
    if (it == pages_.end())
        return Trap::None;

    ++traps_;
    const auto &lines = it->second;
    if (std::find(lines.begin(), lines.end(), line) != lines.end()) {
        ++hits_;
        return Trap::Hit;
    }
    ++false_positives_;
    return Trap::FalsePositive;
}

bool
WatchpointEngine::watching(Addr line) const
{
    const auto it = pages_.find(pageOfLine(line));
    if (it == pages_.end())
        return false;
    const auto &lines = it->second;
    return std::find(lines.begin(), lines.end(), line) != lines.end();
}

void
WatchpointEngine::clear()
{
    pages_.clear();
    watched_lines_ = 0;
}

void
WatchpointEngine::resetStats()
{
    traps_ = 0;
    false_positives_ = 0;
    hits_ = 0;
}

} // namespace delorean::profiling
