/**
 * @file
 * Modeled host (simulation machine) cost accounting.
 *
 * The paper measures evaluation speed on a 2.26 GHz Xeon E5520: KVM
 * fast-forwarding runs near native speed, gem5's atomic CPU around three
 * orders of magnitude slower, detailed O3 four orders, and every
 * watchpoint stop costs a page-fault round trip. We cannot run KVM here,
 * so speed is *modeled*: each activity charges host cycles per
 * instruction (or per event), with per-instruction costs multiplied by
 * the interval scale factor S (DESIGN.md §5) so that reported MIPS are in
 * paper-scale units. The default constants are calibrated so that the
 * three methods land near the paper's absolute speeds (SMARTS 1.3 MIPS,
 * CoolSim 21.9 MIPS, DeLorean ~126 MIPS); all *relative* behaviour
 * (which pass dominates, how false positives hurt povray, ...) is
 * emergent from event counts.
 */

#ifndef DELOREAN_PROFILING_HOST_COST_HH
#define DELOREAN_PROFILING_HOST_COST_HH

#include <string>

#include "base/types.hh"
#include "profiling/hotpath.hh"

namespace delorean::profiling
{

/** Calibration constants for the host cost model. */
struct HostCostParams
{
    /** Host clock (paper: dual-socket Xeon E5520 at 2.26 GHz). */
    double host_ghz = 2.26;

    /** Cycles/instruction under KVM fast-forwarding (near native). */
    double vff_cpi = 1.0;

    /** Cycles/instruction of functional simulation (gem5 atomic). */
    double atomic_cpi = 3200.0;

    /** Cycles/instruction of functional warming (atomic + caches). */
    double fw_cpi = 1750.0;

    /** Cycles/instruction of detailed O3 simulation. */
    double detailed_cpi = 23000.0;

    /** Cycles per watchpoint stop (KVM exit + page-protection flip +
     *  resume; tens of microseconds on the paper's host). */
    double trap_cycles = 88000.0;

    /** Cycles per KVM<->gem5 full state transfer. */
    double state_transfer_cycles = 5.0e6;

    /** Interval scale factor S (paper interval / simulated interval). */
    double scale = 200.0;

    bool operator==(const HostCostParams &other) const = default;
};

/**
 * Value snapshot of a HostCostAccount: the calibration parameters and
 * every charge bucket. Exists so accounts can cross a serialization
 * boundary (src/batch/result_io.cc) and be restored exactly —
 * HostCostAccount::operator== compares all of these fields bitwise.
 */
struct HostCostSnapshot
{
    HostCostParams params;
    double vff = 0.0;
    double functional = 0.0;
    double detailed = 0.0;
    double traps = 0.0;
    double transfers = 0.0;
    double total_cycles = 0.0;
    Counter trap_count = 0;

    /** Measured (not modeled) hot-path wall-clock; never compared. */
    PhaseTimings measured;
};

/**
 * Accumulates modeled host cycles, split by activity for reporting.
 * "Scaled" charges are per-instruction costs over intervals that were
 * shrunk by S and are expanded back; "raw" charges are for the detailed
 * regions/warming, whose lengths the paper (and we) keep absolute.
 */
class HostCostAccount
{
  public:
    explicit HostCostAccount(const HostCostParams &params = {});

    void chargeVffScaled(InstCount insts);
    void chargeAtomicScaled(InstCount insts);
    void chargeAtomicRaw(InstCount insts);
    void chargeFwScaled(InstCount insts);
    void chargeDetailedRaw(InstCount insts);
    void chargeTraps(Counter traps);

    /**
     * Traps whose count is proportional to a scaled interval length
     * (e.g. persistent key watchpoints armed for a whole Explorer
     * window): the count is multiplied by S to restore paper magnitude.
     */
    void chargeTrapsScaled(Counter traps);

    void chargeStateTransfers(Counter transfers);

    /**
     * Fold another account (e.g. a pass) into this one; measured phase
     * timings accumulate alongside the modeled buckets.
     */
    void merge(const HostCostAccount &other);

    /**
     * Measured hot-path wall-clock (src/profiling/hotpath.hh). Unlike
     * every other bucket this is real host time, not modeled time; it
     * rides along through merges and serialization but never takes
     * part in operator== (PhaseTimings compares identically true).
     */
    const PhaseTimings &measured() const { return measured_; }
    PhaseTimings &measured() { return measured_; }

    double cycles() const { return total_cycles_; }
    double seconds() const;

    double vffCycles() const { return vff_; }
    double functionalCycles() const { return functional_; }
    double detailedCycles() const { return detailed_; }
    double trapCycles() const { return traps_; }
    double transferCycles() const { return transfers_; }
    Counter trapCount() const { return trap_count_; }

    const HostCostParams &params() const { return params_; }

    /** One-line human-readable breakdown. */
    std::string breakdown() const;

    /** Capture every bucket (and the params) by value. */
    HostCostSnapshot snapshot() const;

    /**
     * Rebuild an account that compares equal (operator==, bitwise
     * doubles) to the one @p snap was captured from.
     */
    static HostCostAccount fromSnapshot(const HostCostSnapshot &snap);

    /** Exact equality of every charge bucket (and the params). */
    bool operator==(const HostCostAccount &other) const = default;

  private:
    HostCostParams params_;
    double vff_ = 0.0;
    double functional_ = 0.0;
    double detailed_ = 0.0;
    double traps_ = 0.0;
    double transfers_ = 0.0;
    double total_cycles_ = 0.0;
    Counter trap_count_ = 0;
    PhaseTimings measured_;
};

/**
 * Convert a modeled runtime into the paper's headline metric.
 *
 * @param simulated_insts  instructions in the *simulated* (scaled) trace
 * @param scale            interval scale factor S
 * @param seconds          modeled host seconds
 * @return simulation speed in paper-scale MIPS
 */
double modeledMips(InstCount simulated_insts, double scale,
                   double seconds);

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_HOST_COST_HH
