/**
 * @file
 * Page-granularity watchpoint engine.
 *
 * Models the OS page-protection mechanism the paper uses for virtualized
 * profiling (§2.3): a watchpoint on a cacheline protects its whole page,
 * so *any* access to that page stops execution. A stop whose line is not
 * actually watched is a false positive — the dominant cost for workloads
 * like povray where rarely-reused lines share pages with hot data. Every
 * stop (true or false) costs trap_cycles in the host cost model; the
 * caller charges those.
 */

#ifndef DELOREAN_PROFILING_WATCHPOINT_HH
#define DELOREAN_PROFILING_WATCHPOINT_HH

#include <unordered_map>
#include <vector>

#include "base/addr.hh"
#include "base/types.hh"

namespace delorean::profiling
{

/** Outcome of presenting one access to the engine. */
enum class Trap : std::uint8_t
{
    None,          //!< page not protected: runs at native speed
    FalsePositive, //!< page protected, but a different line accessed
    Hit,           //!< a watched line was accessed
};

/**
 * Set of watched cachelines with page-granularity trapping.
 */
class WatchpointEngine
{
  public:
    /** Protect @p line's page and watch the line. Idempotent. */
    void watchLine(Addr line);

    /**
     * Stop watching @p line; the page protection is dropped once no
     * watched line remains on it.
     */
    void unwatchLine(Addr line);

    /**
     * Present an access. Updates trap statistics.
     * Call only when active() — the native-speed fast path is the
     * caller's branch, mirroring how unprotected pages never trap.
     */
    Trap access(Addr line);

    /** @return true if any line is being watched. */
    bool active() const { return watched_lines_ != 0; }

    /** @return true iff @p line itself is watched. */
    bool watching(Addr line) const;

    /** Drop all watchpoints (does not reset statistics). */
    void clear();

    Counter traps() const { return traps_; }
    Counter falsePositives() const { return false_positives_; }
    Counter trueHits() const { return hits_; }
    std::size_t watchedLines() const { return watched_lines_; }
    std::size_t protectedPages() const { return pages_.size(); }

    void resetStats();

  private:
    /** page -> watched lines on that page (few in practice). */
    std::unordered_map<Addr, std::vector<Addr>> pages_;
    std::size_t watched_lines_ = 0;

    Counter traps_ = 0;
    Counter false_positives_ = 0;
    Counter hits_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_WATCHPOINT_HH
