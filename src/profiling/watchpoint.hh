/**
 * @file
 * Page-granularity watchpoint engine.
 *
 * Models the OS page-protection mechanism the paper uses for virtualized
 * profiling (§2.3): a watchpoint on a cacheline protects its whole page,
 * so *any* access to that page stops execution. A stop whose line is not
 * actually watched is a false positive — the dominant cost for workloads
 * like povray where rarely-reused lines share pages with hot data. Every
 * stop (true or false) costs trap_cycles in the host cost model; the
 * caller charges those.
 *
 * This is the single hottest predicate in the Explorer replay loop:
 * every memory reference of every virtualized window asks "is this
 * page protected?", and almost always the answer is no. access()
 * therefore fronts the page map with a bit-packed hash prefilter — one
 * load and one bit test on an 8 KiB bitmap that fits in L1 — and only
 * falls into the exact map probe when the page's filter bit is set.
 * The filter has no false negatives (bits are set on watch and only
 * cleared wholesale), so trap/false-positive/hit counts are
 * bit-identical to the unfiltered engine; stale bits from unwatched
 * pages merely cost the occasional redundant map probe.
 */

#ifndef DELOREAN_PROFILING_WATCHPOINT_HH
#define DELOREAN_PROFILING_WATCHPOINT_HH

#include <vector>

#include "base/addr.hh"
#include "base/flat_hash.hh"
#include "base/types.hh"

namespace delorean::profiling
{

/** Outcome of presenting one access to the engine. */
enum class Trap : std::uint8_t
{
    None,          //!< page not protected: runs at native speed
    FalsePositive, //!< page protected, but a different line accessed
    Hit,           //!< a watched line was accessed
};

/**
 * Set of watched cachelines with page-granularity trapping.
 */
class WatchpointEngine
{
  public:
    /** Protect @p line's page and watch the line. Idempotent. */
    void watchLine(Addr line);

    /**
     * Stop watching @p line; the page protection is dropped once no
     * watched line remains on it.
     */
    void unwatchLine(Addr line);

    /**
     * Present an access. Updates trap statistics.
     * Call only when active() — the native-speed fast path is the
     * caller's branch, mirroring how unprotected pages never trap.
     */
    Trap
    access(Addr line)
    {
        // Prefilter: a clear bit proves the page is unprotected, which
        // is the overwhelmingly common case in a replay window.
        const Addr page = pageOfLine(line);
        if (!filter_.mayContain(page))
            return Trap::None;
        return accessProtected(line, page);
    }

    /**
     * Batched page prefilter over a chunk of the reference stream:
     * may[i] = the page of lines[i] has its filter bit set — exactly
     * the screen access() applies per line, but hashed four lanes at a
     * time (base/simd.hh). No statistics are touched (the prefilter
     * never counts), so splitting access() into prefilterPages() +
     * accessPrefiltered() keeps trap accounting bit-identical.
     */
    void
    prefilterPages(const Addr *lines, std::size_t n,
                   std::uint8_t *may) const
    {
        constexpr std::size_t batch = 256;
        Addr pages[batch];
        while (n > 0) {
            const std::size_t b = n < batch ? n : batch;
            for (std::size_t i = 0; i < b; ++i)
                pages[i] = pageOfLine(lines[i]);
            filter_.mayContainAll(pages, b, may);
            lines += b;
            may += b;
            n -= b;
        }
    }

    /**
     * access() for a line whose page already passed prefilterPages().
     * Call only for lines with may[i] set; clear lines are Trap::None
     * with no statistics, exactly as access() leaves them.
     */
    Trap
    accessPrefiltered(Addr line)
    {
        return accessProtected(line, pageOfLine(line));
    }

    /** @return true if any line is being watched. */
    bool active() const { return !lines_.empty(); }

    /** @return true iff @p line itself is watched. */
    bool watching(Addr line) const;

    /** Drop all watchpoints (does not reset statistics). */
    void clear();

    Counter traps() const { return traps_; }
    Counter falsePositives() const { return false_positives_; }
    Counter trueHits() const { return hits_; }
    std::size_t watchedLines() const { return lines_.size(); }
    std::size_t protectedPages() const { return pages_.size(); }

    void resetStats();

  private:
    /** Exact check + stat accounting once the prefilter matched. */
    Trap accessProtected(Addr line, Addr page);

    /**
     * page -> number of watched lines on it (protection refcount) and
     * the set of watched lines, both open-addressed flat tables: a
     * protected-page access resolves with two contiguous probes
     * instead of a node walk plus a per-page line scan.
     */
    FlatAddrMap<std::uint32_t> pages_;
    FlatAddrMap<std::uint8_t> lines_;
    /** Conservative page-presence prefilter (never a false negative). */
    AddrBitFilter filter_;

    Counter traps_ = 0;
    Counter false_positives_ = 0;
    Counter hits_ = 0;
};

} // namespace delorean::profiling

#endif // DELOREAN_PROFILING_WATCHPOINT_HH
