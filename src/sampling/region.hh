/**
 * @file
 * The sampled-simulation region schedule and trace checkpointing.
 *
 * The paper evaluates 10 detailed regions of 10 k instructions spread
 * uniformly 1 B instructions apart, with 30 k instructions of detailed
 * warming before each. We keep the same structure at a reduced spacing
 * (default 5 M) and expose the implied scale factor S so all interval
 * parameters and host costs scale together (DESIGN.md §5).
 */

#ifndef DELOREAN_SAMPLING_REGION_HH
#define DELOREAN_SAMPLING_REGION_HH

#include <map>
#include <memory>
#include <vector>

#include "workload/trace_source.hh"

namespace delorean::sampling
{

/** Placement of the detailed regions within the trace. */
struct RegionSchedule
{
    /** The paper's region spacing (1 B instructions). */
    static constexpr InstCount paper_spacing = 1'000'000'000;

    unsigned num_regions = 10;
    InstCount spacing = 5'000'000;
    InstCount region_len = 10'000;         //!< detailed region
    InstCount detailed_warming = 30'000;   //!< lukewarm window

    /** First instruction after region @p i (multiple of spacing). */
    InstCount regionEnd(unsigned i) const { return spacing * (i + 1); }

    /** First instruction of detailed region @p i. */
    InstCount
    detailedStart(unsigned i) const
    {
        return regionEnd(i) - region_len;
    }

    /** First instruction of the detailed-warming window of region @p i. */
    InstCount
    warmingStart(unsigned i) const
    {
        return detailedStart(i) - detailed_warming;
    }

    /** Total trace length covered by the schedule. */
    InstCount totalInstructions() const { return spacing * num_regions; }

    /** Interval scale factor S = paper spacing / spacing. */
    double
    scaleFactor() const
    {
        return double(paper_spacing) / double(spacing);
    }

    /** Scale a paper-scale interval parameter down by S (min 1). */
    InstCount scaleInterval(InstCount paper_value) const;

    void validate() const;
};

/**
 * Checkpoint store over a master trace — our stand-in for the library of
 * KVM snapshots the paper's passes boot from. prepare() makes one forward
 * pass and snapshots the generator at each requested position; at() hands
 * out clones positioned anywhere, advancing from the nearest checkpoint.
 */
class TraceCheckpointer
{
  public:
    explicit TraceCheckpointer(const workload::TraceSource &master);

    /** Snapshot the requested positions in one forward pass. */
    void prepare(std::vector<InstCount> positions);

    /** @return a fresh trace positioned exactly at @p pos. */
    std::unique_ptr<workload::TraceSource> at(InstCount pos) const;

    std::size_t checkpoints() const { return snaps_.size(); }

  private:
    std::unique_ptr<workload::TraceSource> origin_;
    std::map<InstCount, std::unique_ptr<workload::TraceSource>> snaps_;
};

/** All positions the DeLorean passes need for @p schedule. */
std::vector<InstCount>
checkpointPositions(const RegionSchedule &schedule,
                    const std::vector<InstCount> &horizons);

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_REGION_HH
