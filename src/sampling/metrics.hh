/**
 * @file
 * Accuracy and speed metrics used throughout the evaluation, mirroring
 * how the paper reports its figures: CPI error relative to the SMARTS
 * reference, speed normalized to SMARTS, and geometric means.
 */

#ifndef DELOREAN_SAMPLING_METRICS_HH
#define DELOREAN_SAMPLING_METRICS_HH

#include <vector>

#include "sampling/results.hh"

namespace delorean::sampling
{

/** |x - ref| / ref, in percent; 0 when the reference is zero. */
double relativeErrorPct(double reference, double value);

/** CPI error of @p result against @p reference, percent (Figures 9/10). */
double cpiErrorPct(const MethodResult &reference,
                   const MethodResult &result);

/** MPKI error, percent. */
double mpkiErrorPct(const MethodResult &reference,
                    const MethodResult &result);

/** Speedup of @p result over @p baseline (wall-clock based, Figure 5). */
double speedupOver(const MethodResult &baseline,
                   const MethodResult &result);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &xs);

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_METRICS_HH
