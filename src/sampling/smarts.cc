#include "sampling/smarts.hh"

#include "base/logging.hh"

namespace delorean::sampling
{

MethodResult
SmartsMethod::run(const workload::TraceSource &master,
                  const MethodConfig &config)
{
    config.schedule.validate();
    config.hier.validate();

    MethodResult result;
    result.method = "SMARTS";
    result.benchmark = master.name();
    result.cost = profiling::HostCostAccount(config.scaledCost());

    auto trace = master.clone();
    cache::CacheHierarchy hier(config.hier);
    cpu::DetailedSimulator sim(hier, config.sim);

    const auto &sched = config.schedule;
    for (unsigned r = 0; r < sched.num_regions; ++r) {
        // Functional warming from wherever we are to the start of the
        // detailed-warming window: caches and branch predictor stay
        // continuously warm (that is the entire point of SMARTS).
        const InstCount gap = sched.warmingStart(r) - trace->position();
        sim.warmRegion(*trace, gap);
        result.cost.chargeFwScaled(gap);

        // Detailed warming + detailed region at detailed-simulation cost.
        sim.warmRegion(*trace, sched.detailed_warming);
        result.cost.chargeDetailedRaw(sched.detailed_warming);

        const auto stats =
            sim.simulate(*trace, sched.region_len, nullptr);
        result.cost.chargeDetailedRaw(sched.region_len);
        result.addRegion(stats);
    }

    result.windows_total = sched.num_regions;
    result.windows_replayed = sched.num_regions;
    result.wall_seconds = result.cost.seconds();
    result.mips = profiling::modeledMips(sched.totalInstructions(),
                                         sched.scaleFactor(),
                                         result.wall_seconds);
    return result;
}

} // namespace delorean::sampling
