/**
 * @file
 * CoolSim: randomized statistical warming (RSW).
 *
 * The state-of-the-art the paper improves on (Nikoleris et al., SAMOS
 * 2016, paper reference [23]): fast-forward between regions at
 * near-native speed while randomly sampling reuse distances with
 * page-protection watchpoints, then predict — per load PC — whether each
 * access that misses the lukewarm cache would have hit a warm cache,
 * using statistical cache models. Uses the paper's best adaptive
 * sampling schedule (§6).
 */

#ifndef DELOREAN_SAMPLING_COOLSIM_HH
#define DELOREAN_SAMPLING_COOLSIM_HH

#include "sampling/method.hh"
#include "sampling/results.hh"

namespace delorean::sampling
{

/** Randomized-statistical-warming sampled simulation. */
class CoolSimMethod
{
  public:
    static MethodResult run(const workload::TraceSource &master,
                            const MethodConfig &config);
};

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_COOLSIM_HH
