#include "sampling/region.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace delorean::sampling
{

InstCount
RegionSchedule::scaleInterval(InstCount paper_value) const
{
    const double scaled = double(paper_value) / scaleFactor();
    return std::max<InstCount>(1, InstCount(std::llround(scaled)));
}

void
RegionSchedule::validate() const
{
    fatal_if(num_regions == 0, "schedule: need at least one region");
    fatal_if(region_len == 0, "schedule: empty detailed region");
    fatal_if(spacing <= region_len + detailed_warming,
             "schedule: spacing %llu too small for region %llu + "
             "warming %llu",
             (unsigned long long)spacing,
             (unsigned long long)region_len,
             (unsigned long long)detailed_warming);
    fatal_if(spacing > paper_spacing,
             "schedule: spacing beyond paper scale");
}

TraceCheckpointer::TraceCheckpointer(const workload::TraceSource &master)
    : origin_(master.clone())
{
    panic_if(origin_->position() != 0,
             "TraceCheckpointer requires a trace at position 0");
}

void
TraceCheckpointer::prepare(std::vector<InstCount> positions)
{
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());

    auto cursor = origin_->clone();
    for (const InstCount pos : positions) {
        panic_if(pos < cursor->position(),
                 "checkpoint positions must be non-decreasing");
        cursor->skip(pos - cursor->position());
        snaps_.emplace(pos, cursor->clone());
    }
}

std::unique_ptr<workload::TraceSource>
TraceCheckpointer::at(InstCount pos) const
{
    // Nearest checkpoint at or before pos, falling back to the origin.
    const workload::TraceSource *base = origin_.get();
    const auto it = snaps_.upper_bound(pos);
    if (it != snaps_.begin()) {
        const auto &[snap_pos, snap] = *std::prev(it);
        if (snap_pos <= pos)
            base = snap.get();
    }
    auto trace = base->clone();
    trace->skip(pos - trace->position());
    return trace;
}

std::vector<InstCount>
checkpointPositions(const RegionSchedule &schedule,
                    const std::vector<InstCount> &horizons)
{
    std::vector<InstCount> positions;
    for (unsigned r = 0; r < schedule.num_regions; ++r) {
        const InstCount ds = schedule.detailedStart(r);
        positions.push_back(schedule.warmingStart(r));
        for (const InstCount h : horizons)
            positions.push_back(ds >= h ? ds - h : 0);
    }
    return positions;
}

} // namespace delorean::sampling
