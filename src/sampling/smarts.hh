/**
 * @file
 * SMARTS: sampled simulation with functional warming (FW).
 *
 * The reference methodology (Wunderlich et al., paper reference [34]):
 * between detailed regions, *every* instruction is functionally simulated
 * with the caches and branch predictor kept up to date, so the
 * microarchitecture state at each detailed region is exact. Accurate but
 * slow — the paper's baseline at 1.3 MIPS. The CPI this method reports is
 * the reference that Figures 9/10/12 measure errors against.
 */

#ifndef DELOREAN_SAMPLING_SMARTS_HH
#define DELOREAN_SAMPLING_SMARTS_HH

#include "sampling/method.hh"
#include "sampling/results.hh"

namespace delorean::sampling
{

/** Functional-warming sampled simulation. */
class SmartsMethod
{
  public:
    /**
     * Run the full schedule over a clone of @p master.
     */
    static MethodResult run(const workload::TraceSource &master,
                            const MethodConfig &config);
};

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_SMARTS_HH
