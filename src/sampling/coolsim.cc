#include "sampling/coolsim.hh"

#include <limits>

#include "base/logging.hh"
#include "profiling/rsw_sampler.hh"
#include "statmodel/assoc_model.hh"
#include "statmodel/statstack.hh"

namespace delorean::sampling
{

namespace
{

/** Adapter feeding detailed-warming accesses into the stride model. */
class AssocTrainer : public cpu::MemObserver
{
  public:
    explicit AssocTrainer(statmodel::AssocModel &model) : model_(model) {}

    void
    memAccess(Addr pc, Addr line, bool write) override
    {
        (void)write;
        model_.observe(pc, line);
        ++refs_;
    }

    /** Memory references seen during detailed warming. */
    RefCount refs() const { return refs_; }

  private:
    statmodel::AssocModel &model_;
    RefCount refs_ = 0;
};

/**
 * RSW's per-PC statistical classifier (Figure 3 with per-PC reuse
 * distributions instead of exact key reuses).
 *
 * Unlike DSW, RSW does not know the access's actual reuse distance; it
 * only has the PC's sampled distribution. The per-access decision is
 * therefore *probabilistic*: the access misses with the probability
 * that a reuse drawn from its PC's distribution exceeds the cache's
 * miss threshold (Nikoleris et al., ISPASS 2014). This is also where
 * RSW's error comes from: sparse, censored per-PC samples make p_miss
 * noisy — exactly the paper's motivation for DSW.
 */
class CoolSimClassifier : public cpu::LlcClassifier
{
  public:
    /**
     * @param luke_refs memory references covered by the lukewarm
     *        (detailed-warming) window: accesses reaching the
     *        classifier already missed it, so per-PC miss
     *        probabilities must be conditioned on rd > luke_refs.
     */
    CoolSimClassifier(const statmodel::PcReuseProfile &profile,
                      const cache::Cache &llc,
                      const statmodel::AssocModel &assoc,
                      RefCount luke_refs, std::uint64_t seed)
        : profile_(profile),
          llc_(llc),
          assoc_(assoc),
          global_stack_(profile.global()),
          llc_lines_(llc.config().lines()),
          threshold_(global_stack_.missThreshold(llc_lines_)),
          luke_refs_(luke_refs),
          rng_(seed)
    {}

    cpu::AccessClass
    classifyMiss(Addr pc, Addr line, bool write, RefCount idx) override
    {
        (void)write;
        (void)idx;

        // Lukewarm set already full: certainly a conflict miss.
        if (llc_.setFull(line))
            return cpu::AccessClass::ConflictMiss;

        const statmodel::ReuseHistogram *h = profile_.forPc(pc);
        if (!h || h->samples() == 0)
            h = &profile_.global();
        if (h->samples() == 0) {
            // No reuse evidence at all: predict a (cold) miss.
            return cpu::AccessClass::ColdMiss;
        }

        // Dominant-stride conflict model on the PC's typical footprint.
        const std::uint64_t median = h->events().quantile(0.5);
        const double sd = global_stack_.stackDistance(median);
        if (assoc_.isConflict(pc, sd))
            return cpu::AccessClass::ConflictMiss;

        // Capacity, per access: P(reuse beyond the miss threshold |
        // reuse beyond the lukewarm window) under this PC's
        // distribution (sd(rd) is monotone in rd, so thresholding rd
        // is thresholding stack distance). Conditioning matters: an
        // access only reaches this classifier because it missed the
        // lukewarm state, so the PC's short reuses (which hit the L1)
        // must not dilute its miss probability. The Kaplan-Meier
        // estimate handles the censored watchpoints.
        double p_miss = 0.0;
        if (threshold_ != std::numeric_limits<std::uint64_t>::max()) {
            const double s_thr = h->survivalKM(threshold_);
            const double s_luke = h->survivalKM(luke_refs_);
            p_miss = s_luke > 1e-12 ? std::min(1.0, s_thr / s_luke)
                                    : s_thr;
        }
        if (rng_.chance(p_miss))
            return cpu::AccessClass::CapacityMiss;

        return cpu::AccessClass::WarmingHit;
    }

  private:
    const statmodel::PcReuseProfile &profile_;
    const cache::Cache &llc_;
    const statmodel::AssocModel &assoc_;
    statmodel::StatStack global_stack_;
    std::uint64_t llc_lines_;
    std::uint64_t threshold_;
    RefCount luke_refs_;
    Rng rng_;
};

} // namespace

MethodResult
CoolSimMethod::run(const workload::TraceSource &master,
                   const MethodConfig &config)
{
    config.schedule.validate();
    config.hier.validate();

    MethodResult result;
    result.method = "CoolSim";
    result.benchmark = master.name();
    result.cost = profiling::HostCostAccount(config.scaledCost());

    const auto &sched = config.schedule;
    auto trace = master.clone();
    cache::CacheHierarchy hier(config.hier);
    cpu::DetailedSimulator sim(hier, config.sim);
    statmodel::AssocModel assoc(config.hier.llc.sets(),
                                config.hier.llc.assoc);
    profiling::RswSampler sampler(
        profiling::RswSchedule::coolsim(sched.scaleFactor()),
        std::hash<std::string>{}(master.name()) ^ 0xc001c0de);

    for (unsigned r = 0; r < sched.num_regions; ++r) {
        // --- warm-up interval: VFF + randomized watchpoint sampling ----
        const InstCount interval =
            sched.warmingStart(r) - trace->position();
        const Counter traps_before = sampler.traps();

        sampler.beginInterval();
        for (InstCount i = 0; i < interval; ++i) {
            const auto inst = trace->next();
            if (inst.isMem()) {
                sampler.observe(inst.pc, inst.line(),
                                double(i) / double(interval));
            } else {
                sampler.tick();
            }
        }
        sampler.endInterval();

        result.cost.chargeVffScaled(interval);
        result.cost.chargeTraps(sampler.traps() - traps_before);
        result.cost.chargeStateTransfers(2); // KVM -> gem5 -> KVM

        // --- lukewarm state: cold caches + 30k detailed warming ---------
        hier.flush();
        sim.branchPredictor().reset();
        sim.prefetcher().reset();
        assoc.clear();
        AssocTrainer trainer(assoc);
        sim.warmRegion(*trace, sched.detailed_warming, &trainer);
        result.cost.chargeDetailedRaw(sched.detailed_warming);

        // --- detailed region with the RSW classifier --------------------
        CoolSimClassifier classifier(sampler.profile(), hier.llc(),
                                     assoc, trainer.refs(),
                                     0xdeadbeef + r);
        const auto stats =
            sim.simulate(*trace, sched.region_len, &classifier);
        result.cost.chargeDetailedRaw(sched.region_len);

        result.addRegion(stats);
        result.reuse_samples += sampler.samples();
        sampler.clearProfile();
    }

    result.traps = sampler.traps();
    result.false_positives = sampler.falsePositives();
    result.windows_total = sched.num_regions;
    result.windows_replayed = sched.num_regions;
    result.wall_seconds = result.cost.seconds();
    result.mips = profiling::modeledMips(sched.totalInstructions(),
                                         sched.scaleFactor(),
                                         result.wall_seconds);
    return result;
}

} // namespace delorean::sampling
