#include "sampling/metrics.hh"

#include <cmath>

#include "base/logging.hh"

namespace delorean::sampling
{

double
relativeErrorPct(double reference, double value)
{
    if (reference == 0.0)
        return 0.0;
    return std::abs(value - reference) / std::abs(reference) * 100.0;
}

double
cpiErrorPct(const MethodResult &reference, const MethodResult &result)
{
    return relativeErrorPct(reference.cpi(), result.cpi());
}

double
mpkiErrorPct(const MethodResult &reference, const MethodResult &result)
{
    return relativeErrorPct(reference.mpki(), result.mpki());
}

double
speedupOver(const MethodResult &baseline, const MethodResult &result)
{
    if (result.wall_seconds <= 0.0)
        return 0.0;
    return baseline.wall_seconds / result.wall_seconds;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double x : xs) {
        panic_if(x <= 0.0, "geomean over non-positive value %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / double(xs.size()));
}

} // namespace delorean::sampling
