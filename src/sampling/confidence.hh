/**
 * @file
 * Running confidence intervals for statistical early stopping.
 *
 * The SMARTS/live-points lineage (TurboSMARTSim-style checkpoint
 * libraries) turns "replay every sampled window" into "replay windows
 * until the estimate is statistically done": maintain a running mean
 * and variance over per-window CPIs and stop once the confidence
 * interval's relative half-width drops below the requested error
 * bound. This header provides the two pieces the DeLorean driver
 * needs: Welford's online mean/variance (numerically stable, one pass,
 * deterministic for a given sequence of doubles) and the two-sided
 * normal z-value for a confidence level.
 *
 * Everything here is a pure function of the input doubles — no RNG, no
 * clocks — so early-stopped runs remain bit-reproducible.
 */

#ifndef DELOREAN_SAMPLING_CONFIDENCE_HH
#define DELOREAN_SAMPLING_CONFIDENCE_HH

#include <cstdint>

namespace delorean::sampling
{

/**
 * Welford's online mean/variance accumulator with confidence-interval
 * queries. Sample variance (n-1 denominator) matches the SMARTS
 * methodology for matched-pair window sampling.
 */
class RunningCI
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / double(n_);
        m2_ += delta * (x - mean_);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Sample variance (0 for fewer than two samples). */
    double
    variance() const
    {
        return n_ < 2 ? 0.0 : m2_ / double(n_ - 1);
    }

    /** z * stderr = z * sqrt(var / n); 0 for fewer than two samples. */
    double halfWidth(double z) const;

    /**
     * halfWidth(z) / |mean|: the relative error bound the estimate has
     * reached. Returns +infinity when the mean is 0 but the half-width
     * is not (the stop condition can then never be met — fail safe
     * toward full replay), and 0 when both are 0.
     */
    double relativeHalfWidth(double z) const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Two-sided z-value for a confidence level in percent: the standard
 * normal quantile at (1 + pct/100) / 2. zForConfidence(95) ~ 1.960,
 * zForConfidence(99.7) ~ 2.968. fatal()s unless 0 < pct < 100.
 */
double zForConfidence(double pct);

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_CONFIDENCE_HH
