#include "sampling/results.hh"

namespace delorean::sampling
{

void
MethodResult::addRegion(const cpu::RegionStats &stats)
{
    regions.push_back(stats);
    total.add(stats);
}

} // namespace delorean::sampling
