/**
 * @file
 * Shared configuration for all sampling methods.
 */

#ifndef DELOREAN_SAMPLING_METHOD_HH
#define DELOREAN_SAMPLING_METHOD_HH

#include "cache/cache_config.hh"
#include "cpu/detailed_sim.hh"
#include "profiling/host_cost.hh"
#include "sampling/region.hh"

namespace delorean::sampling
{

/**
 * Everything a sampling method needs besides the workload: the simulated
 * machine, the region schedule, and the host cost calibration. The cost
 * model's scale factor is always derived from the schedule; the value in
 * @c cost is overwritten by the methods.
 */
struct MethodConfig
{
    cache::HierarchyConfig hier;
    cpu::DetailedSimConfig sim;
    RegionSchedule schedule;
    profiling::HostCostParams cost;

    /** Cost params with scale synchronized to the schedule. */
    profiling::HostCostParams
    scaledCost() const
    {
        profiling::HostCostParams p = cost;
        p.scale = schedule.scaleFactor();
        return p;
    }
};

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_METHOD_HH
