/**
 * @file
 * Result records shared by every sampling method.
 */

#ifndef DELOREAN_SAMPLING_RESULTS_HH
#define DELOREAN_SAMPLING_RESULTS_HH

#include <array>
#include <string>
#include <vector>

#include "cpu/detailed_sim.hh"
#include "profiling/host_cost.hh"

namespace delorean::sampling
{

/**
 * Everything one (benchmark, method) run produces: per-region detailed
 * statistics, aggregated statistics, and the modeled host cost / speed.
 */
struct MethodResult
{
    std::string method;
    std::string benchmark;

    std::vector<cpu::RegionStats> regions;
    cpu::RegionStats total; //!< sum over regions

    /** Total modeled host cost across all processes/passes. */
    profiling::HostCostAccount cost;

    /**
     * Modeled wall-clock. For single-process methods (SMARTS, CoolSim)
     * this equals cost.seconds(); for DeLorean it is the pipelined
     * completion time across passes.
     */
    double wall_seconds = 0.0;

    /** Paper-scale simulation speed (Figure 5). */
    double mips = 0.0;

    /** Collected reuse distances (Figure 6); 0 for SMARTS. */
    Counter reuse_samples = 0;

    /** Watchpoint stops / false positives across the run. */
    Counter traps = 0;
    Counter false_positives = 0;

    // --- DeLorean-only fields (Figures 7 & 8) ---------------------------
    /** Key reuse distances resolved per Explorer. */
    std::array<Counter, 4> keys_by_explorer{};

    /** Unique key cachelines over all regions (§3.2 text stat). */
    Counter keys_total = 0;

    /** Keys needing exploration (missed the lukewarm state). */
    Counter keys_explored = 0;

    /** Keys no Explorer resolved (classified cold). */
    Counter keys_unresolved = 0;

    /** Average number of Explorers engaged per region (Figure 8). */
    double avg_explorers = 0.0;

    // --- Statistical early stopping (src/sampling/confidence.hh) --------
    /** Detailed windows (regions) in the schedule. */
    Counter windows_total = 0;

    /**
     * Windows actually replayed. Equal to windows_total except for a
     * confidence-driven DeLorean run that stopped early; aggregates
     * (total, cpi(), mpki()) then cover only the replayed windows.
     */
    Counter windows_replayed = 0;

    /** Requested confidence level in percent; 0 = exact mode. */
    double confidence = 0.0;

    /**
     * Relative confidence-interval half-width over per-window CPIs at
     * the end of the run (0 when no interval was tracked). An
     * early-stopped run satisfied ci_error <= the requested error.
     */
    double ci_error = 0.0;

    double cpi() const { return total.cpi(); }
    double mpki() const { return total.mpki(); }

    /** Fold one region's stats into the aggregate. */
    void addRegion(const cpu::RegionStats &stats);

    /**
     * Exact field-by-field equality (doubles compared bitwise-exactly).
     * This is the "bit-identical" relation the parallel execution
     * paths guarantee against serial runs; being defaulted, it can
     * never fall behind the field list.
     */
    bool operator==(const MethodResult &other) const = default;
};

} // namespace delorean::sampling

#endif // DELOREAN_SAMPLING_RESULTS_HH
