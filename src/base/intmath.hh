/**
 * @file
 * Small integer math helpers used throughout the simulator.
 */

#ifndef DELOREAN_BASE_INTMATH_HH
#define DELOREAN_BASE_INTMATH_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace delorean
{

/** @return true if @p n is a (positive) power of two. */
template <typename T>
constexpr bool
isPowerOf2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return n != 0 && (n & (n - 1)) == 0;
}

/** @return floor(log2(n)); @p n must be non-zero. */
template <typename T>
constexpr int
floorLog2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return std::bit_width(n) - 1;
}

/** @return ceil(log2(n)); @p n must be non-zero. */
template <typename T>
constexpr int
ceilLog2(T n)
{
    static_assert(std::is_unsigned_v<T>);
    return n <= 1 ? 0 : std::bit_width(n - 1);
}

/** @return ceil(a / b) for positive integers. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** @return @p v rounded up to the next multiple of @p align (power of 2). */
template <typename T>
constexpr T
roundUp(T v, T align)
{
    return (v + align - 1) & ~(align - 1);
}

/** @return @p v rounded down to a multiple of @p align (power of 2). */
template <typename T>
constexpr T
roundDown(T v, T align)
{
    return v & ~(align - 1);
}

} // namespace delorean

#endif // DELOREAN_BASE_INTMATH_HH
