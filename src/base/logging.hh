/**
 * @file
 * gem5-style status and error reporting.
 *
 * Following gem5's conventions (src/base/logging.hh there):
 *  - panic():  an internal invariant was violated — a library bug. Aborts.
 *  - fatal():  the simulation cannot continue due to a user error (bad
 *              configuration, invalid arguments). Exits with code 1.
 *  - warn():   something is approximated or suspicious but survivable.
 *  - inform(): plain status output.
 *
 * All take printf-style format strings. The panic/fatal macros capture
 * file and line for diagnosis.
 */

#ifndef DELOREAN_BASE_LOGGING_HH
#define DELOREAN_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace delorean
{

/** Severity levels used by the logging backend. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

namespace detail
{

/**
 * Core log sink. Formats and emits a message; terminates the process for
 * Panic (abort) and Fatal (exit(1)).
 *
 * @param level  severity
 * @param file   source file emitting the message (may be null)
 * @param line   source line (0 if unknown)
 * @param fmt    printf-style format string
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

/** vprintf flavour used by the variadic front ends. */
void vlogMessage(LogLevel level, const char *file, int line,
                 const char *fmt, std::va_list args);

} // namespace detail

/**
 * Suppress or re-enable warn()/inform() output globally.
 *
 * Tests use this to keep expected-warning paths quiet; panic/fatal are
 * never suppressed.
 */
void setLogQuiet(bool quiet);

/** @return true if warn()/inform() output is currently suppressed. */
bool logQuiet();

/** Number of warnings emitted since process start (testing hook). */
std::uint64_t warnCount();

} // namespace delorean

/** Report an internal library bug and abort. */
#define panic(...) \
    ::delorean::detail::logMessage(::delorean::LogLevel::Panic, \
                                   __FILE__, __LINE__, __VA_ARGS__)

/** Report an unrecoverable user/configuration error and exit(1). */
#define fatal(...) \
    ::delorean::detail::logMessage(::delorean::LogLevel::Fatal, \
                                   __FILE__, __LINE__, __VA_ARGS__)

/** Report a survivable concern. */
#define warn(...) \
    ::delorean::detail::logMessage(::delorean::LogLevel::Warn, \
                                   __FILE__, __LINE__, __VA_ARGS__)

/** Report plain status. */
#define inform(...) \
    ::delorean::detail::logMessage(::delorean::LogLevel::Inform, \
                                   __FILE__, __LINE__, __VA_ARGS__)

/**
 * gem5-style always-on assertion carrying a formatted explanation.
 * Unlike assert(), stays active in release builds: invariant violations in
 * a simulator silently corrupt results otherwise.
 */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** User-error flavour of panic_if. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

#endif // DELOREAN_BASE_LOGGING_HH
