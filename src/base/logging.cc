#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace delorean
{

namespace
{

std::atomic<bool> quiet{false};
std::atomic<std::uint64_t> warnings{0};

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
    }
    return "???";
}

} // namespace

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet.load(std::memory_order_relaxed);
}

std::uint64_t
warnCount()
{
    return warnings.load(std::memory_order_relaxed);
}

namespace detail
{

void
vlogMessage(LogLevel level, const char *file, int line,
            const char *fmt, std::va_list args)
{
    if (level == LogLevel::Warn)
        warnings.fetch_add(1, std::memory_order_relaxed);

    const bool is_error =
        level == LogLevel::Panic || level == LogLevel::Fatal;

    if (!is_error && logQuiet())
        return;

    std::FILE *out = is_error ? stderr : stdout;
    std::fprintf(out, "%s: ", levelPrefix(level));
    std::vfprintf(out, fmt, args);
    if (is_error && file)
        std::fprintf(out, " @ %s:%d", file, line);
    std::fprintf(out, "\n");
    std::fflush(out);

    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogMessage(level, file, line, fmt, args);
    va_end(args);
}

} // namespace detail

} // namespace delorean
