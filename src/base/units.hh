/**
 * @file
 * Byte-size and count literals (KiB/MiB/GiB, K/M/B) for readable
 * configuration code: `512 * MiB`, `30 * kilo` etc.
 */

#ifndef DELOREAN_BASE_UNITS_HH
#define DELOREAN_BASE_UNITS_HH

#include <cstdint>

namespace delorean
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Decimal instruction-count units, as used in the paper's prose. */
constexpr std::uint64_t kilo = 1000;
constexpr std::uint64_t mega = 1000 * kilo;
constexpr std::uint64_t giga = 1000 * mega;

} // namespace delorean

#endif // DELOREAN_BASE_UNITS_HH
