/**
 * @file
 * A miniature gem5-style statistics package.
 *
 * Simulation objects register named statistics in a StatGroup; harnesses
 * dump all groups at the end of a run. This is intentionally a small
 * subset of gem5's stats framework: scalars, averages, and distributions
 * cover everything the reproduction needs.
 */

#ifndef DELOREAN_BASE_STATS_HH
#define DELOREAN_BASE_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/histogram.hh"

namespace delorean::statistics
{

/** A named scalar statistic (count or value). */
class Scalar
{
  public:
    Scalar(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc)), value_(0.0)
    {}

    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    void reset() { value_ = 0.0; }

  private:
    std::string name_;
    std::string desc_;
    double value_;
};

/** A running average statistic. */
class Average
{
  public:
    Average(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc)),
          sum_(0.0), count_(0)
    {}

    void sample(double v) { sum_ += v; ++count_; }

    double value() const { return count_ ? sum_ / double(count_) : 0.0; }
    std::uint64_t count() const { return count_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    std::string name_;
    std::string desc_;
    double sum_;
    std::uint64_t count_;
};

/** A named distribution statistic backed by a LogHistogram. */
class Distribution
{
  public:
    Distribution(std::string name, std::string desc,
                 unsigned sub_buckets = 8)
        : name_(std::move(name)), desc_(std::move(desc)),
          hist_(sub_buckets)
    {}

    void sample(std::uint64_t v, double weight = 1.0)
    {
        hist_.add(v, weight);
    }

    const LogHistogram &histogram() const { return hist_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    void reset() { hist_.clear(); }

  private:
    std::string name_;
    std::string desc_;
    LogHistogram hist_;
};

/**
 * A collection of statistics with a common owner name. Objects hold their
 * stats by value and register pointers here; the group only formats.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(Scalar *s) { scalars_.push_back(s); }
    void add(Average *a) { averages_.push_back(a); }
    void add(Distribution *d) { dists_.push_back(d); }

    /** Write `name.stat value # desc` lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<Scalar *> scalars_;
    std::vector<Average *> averages_;
    std::vector<Distribution *> dists_;
};

} // namespace delorean::statistics

#endif // DELOREAN_BASE_STATS_HH
