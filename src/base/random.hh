/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic workloads, randomized
 * statistical warming, vicinity sampling) flows through Rng so that every
 * experiment is reproducible from a seed. The engine is xoshiro256**,
 * which is fast, has a 2^256-1 period, and — unlike std::mt19937 — has a
 * trivially copyable state, which we rely on for trace snapshots
 * (our stand-in for KVM checkpoints).
 *
 * Seeding contract
 * ----------------
 * Every Rng in the system is seeded from *configuration only* — a
 * benchmark name hash, an explicit config seed, a region's position —
 * never from time, thread ids, or global mutable state. Components that
 * need independent streams derive them by mixing their own salt into
 * the seed (splitmix64 decorrelates adjacent seeds), and components
 * that re-execute a window (the Explorers) snapshot and restore Rng
 * state through trace clones rather than re-seeding. Consequences that
 * the test suite asserts (tests/test_threaded.cc):
 *
 *  - two runs of any method with the same inputs produce byte-identical
 *    MethodResults;
 *  - host parallelism (core/parallel.hh, core/threaded_pipeline.hh)
 *    cannot perturb results, because no Rng is ever shared across
 *    concurrently executing work items.
 *
 * Any new randomized component must follow the same rule: accept a seed
 * derived from configuration, own its Rng, and never read one shared
 * mutably across threads.
 */

#ifndef DELOREAN_BASE_RANDOM_HH
#define DELOREAN_BASE_RANDOM_HH

#include <array>
#include <cstdint>

#include "base/fastdiv.hh"
#include "base/logging.hh"

namespace delorean
{

/**
 * xoshiro256** engine with convenience distributions.
 *
 * Copyable and comparable; copying an Rng snapshots the stream, which the
 * workload generators use to implement checkpoint/restore.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that small consecutive seeds give
     *  independent streams. */
    explicit Rng(std::uint64_t seed = 0x5eed);

    // The draw primitives below are defined in the header on purpose:
    // the synthetic trace generator makes one to three draws per
    // generated instruction, which makes cross-TU call overhead a
    // measurable slice of the Explorer replay phase (bench_report).

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** @return uniform value in [0, bound) (bound > 0). */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::nextBounded called with bound 0");
        // Lemire's nearly-divisionless method would be overkill here;
        // simple rejection keeps the stream layout obvious and still
        // unbiased.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * @return uniform value in [0, fd.divisor()), drawing exactly the
     * same stream (and returning exactly the same values) as
     * nextBounded(fd.divisor()). The synthetic trace generator draws
     * by the same loop-invariant bound millions of times per window;
     * this overload replaces both runtime divisions of the plain
     * overload with FastDiv multiplications.
     */
    std::uint64_t
    nextBounded(const FastDiv &fd)
    {
        const std::uint64_t threshold = fd.negMod();
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return fd.mod(r);
        }
    }

    /** @return uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** @return uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 high bits -> double in [0, 1).
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * @return a sample from a geometric distribution with success
     * probability 1/period, i.e. the gap to the next sampled event when
     * sampling one in @p period events on average. Used by the randomized
     * and vicinity samplers; period must be >= 1.
     */
    std::uint64_t nextGeometric(std::uint64_t period);

    /** @return approximately normal sample (mean 0, stddev 1),
     *  via the sum-of-uniforms (Irwin-Hall) approximation. */
    double nextGaussian();

    bool operator==(const Rng &other) const = default;

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace delorean

#endif // DELOREAN_BASE_RANDOM_HH
