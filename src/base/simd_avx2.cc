/**
 * @file
 * AVX2 kernel bodies — the ONLY translation unit compiled with -mavx2
 * (CMakeLists.txt sets the flag per-file on x86-64). Keeping AVX2
 * codegen confined here guarantees the compiler cannot auto-vectorize
 * or FMA-contract any other floating-point code in the library, which
 * is what keeps results bit-identical across build hosts.
 *
 * When built without -mavx2 (non-x86 targets, or -DDELOREAN_FORCE_SCALAR)
 * the kernels degrade to the scalar reference loops and avx2Compiled()
 * reports false, so the dispatcher never selects this backend.
 */

#include "base/simd.hh"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace delorean::simd::detail
{

#if defined(__AVX2__)

bool
avx2Compiled()
{
    return true;
}

void
addDoublesAvx2(double *dst, const double *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Elementwise vaddpd: every lane adds the same operand pair
        // the scalar loop would — exact. No FMA contraction is
        // possible (there is no multiply to fuse).
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                       _mm256_loadu_pd(src + i)));
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

void
orWordsAvx2(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(dst + i));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(a, b));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

std::size_t
findNonZeroWordAvx2(const std::uint64_t *words, std::size_t from,
                    std::size_t n)
{
    std::size_t i = from;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        if (!_mm256_testz_si256(v, v))
            break; // some lane is nonzero; pinpoint it below
    }
    for (; i < n; ++i)
        if (words[i] != 0)
            return i;
    return n;
}

namespace
{

/**
 * Lane-wise low-64 product x * c for a compile-time constant c. AVX2
 * has no 64x64 multiply, so build it from 32x32 partial products:
 * low64(x*c) = lo(x)*lo(c) + ((lo(x)*hi(c) + hi(x)*lo(c)) << 32).
 */
template <std::uint64_t c>
inline __m256i
mullo64(__m256i x)
{
    const __m256i cl = _mm256_set1_epi64x(std::int64_t(c & 0xffffffffu));
    const __m256i ch = _mm256_set1_epi64x(std::int64_t(c >> 32));
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i lo = _mm256_mul_epu32(x, cl);
    const __m256i mid =
        _mm256_add_epi64(_mm256_mul_epu32(x, ch), _mm256_mul_epu32(xh, cl));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

/** Four-lane splitmix64 — bit-for-bit the scalar mixAddr. */
inline __m256i
mixAddr4(__m256i x)
{
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = mullo64<0xbf58476d1ce4e5b9ull>(x);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = mullo64<0x94d049bb133111ebull>(x);
    return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

} // namespace

void
probeFilter16Avx2(const std::uint64_t *words, const Addr *keys,
                  std::size_t n, std::uint8_t *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        const __m256i h =
            _mm256_and_si256(mixAddr4(k), _mm256_set1_epi64x(0xffff));
        // Gather the four filter words, then test each lane's bit.
        const __m256i w = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(words),
            _mm256_srli_epi64(h, 6), 8);
        const __m256i bit = _mm256_and_si256(
            _mm256_srlv_epi64(
                w, _mm256_and_si256(h, _mm256_set1_epi64x(63))),
            _mm256_set1_epi64x(1));
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), bit);
        out[i + 0] = std::uint8_t(lanes[0]);
        out[i + 1] = std::uint8_t(lanes[1]);
        out[i + 2] = std::uint8_t(lanes[2]);
        out[i + 3] = std::uint8_t(lanes[3]);
    }
    if (i < n)
        probeFilter16Scalar(words, keys + i, n - i, out + i);
}

#else // !__AVX2__

bool
avx2Compiled()
{
    return false;
}

void
addDoublesAvx2(double *dst, const double *src, std::size_t n)
{
    addDoublesScalar(dst, src, n);
}

void
orWordsAvx2(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    orWordsScalar(dst, src, n);
}

std::size_t
findNonZeroWordAvx2(const std::uint64_t *words, std::size_t from,
                    std::size_t n)
{
    return findNonZeroWordScalar(words, from, n);
}

void
probeFilter16Avx2(const std::uint64_t *words, const Addr *keys,
                  std::size_t n, std::uint8_t *out)
{
    probeFilter16Scalar(words, keys, n, out);
}

#endif // __AVX2__

} // namespace delorean::simd::detail
