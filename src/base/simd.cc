#include "base/simd.hh"

#include <cstdlib>
#include <cstring>

#include "base/flat_hash.hh"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace delorean::simd
{

namespace detail
{

void
addDoublesScalar(double *dst, const double *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

void
orWordsScalar(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

std::size_t
findNonZeroWordScalar(const std::uint64_t *words, std::size_t from,
                      std::size_t n)
{
    for (std::size_t i = from; i < n; ++i)
        if (words[i] != 0)
            return i;
    return n;
}

void
probeFilter16Scalar(const std::uint64_t *words, const Addr *keys,
                    std::size_t n, std::uint8_t *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t h = mixAddr(keys[i]) & 0xffffu;
        out[i] = std::uint8_t((words[h >> 6] >> (h & 63)) & 1);
    }
}

#if defined(__aarch64__)

namespace
{

void
addDoublesNeon(double *dst, const double *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        // Elementwise vaddq keeps each lane's operand pair — exact.
        vst1q_f64(dst + i,
                  vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

void
orWordsNeon(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        vst1q_u64(dst + i,
                  vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

std::size_t
findNonZeroWordNeon(const std::uint64_t *words, std::size_t from,
                    std::size_t n)
{
    std::size_t i = from;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = vld1q_u64(words + i);
        if (vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0)
            break;
    }
    for (; i < n; ++i)
        if (words[i] != 0)
            return i;
    return n;
}

} // namespace

#endif // __aarch64__

} // namespace detail

namespace
{

struct Kernels
{
    Backend backend;
    const char *name;
    void (*add_doubles)(double *, const double *, std::size_t);
    void (*or_words)(std::uint64_t *, const std::uint64_t *, std::size_t);
    std::size_t (*find_nonzero)(const std::uint64_t *, std::size_t,
                                std::size_t);
    void (*probe_filter16)(const std::uint64_t *, const Addr *,
                           std::size_t, std::uint8_t *);
};

constexpr Kernels scalar_kernels = {
    Backend::Scalar,
    "scalar",
    detail::addDoublesScalar,
    detail::orWordsScalar,
    detail::findNonZeroWordScalar,
    detail::probeFilter16Scalar,
};

Kernels
resolveKernels()
{
#if !defined(DELOREAN_FORCE_SCALAR)
    // Runtime escape hatch: the forced-scalar CI job and the
    // SIMD-vs-scalar bit-identity tests set DELOREAN_SIMD=scalar.
    const char *env = std::getenv("DELOREAN_SIMD");
    if (env && std::strcmp(env, "scalar") == 0)
        return scalar_kernels;
#if defined(__x86_64__) || defined(_M_X64)
    if (detail::avx2Compiled() && __builtin_cpu_supports("avx2")) {
        return {Backend::Avx2,
                "avx2",
                detail::addDoublesAvx2,
                detail::orWordsAvx2,
                detail::findNonZeroWordAvx2,
                detail::probeFilter16Avx2};
    }
#elif defined(__aarch64__)
    // NEON is baseline on aarch64 — no runtime probe needed. The
    // filter probe stays scalar there: without a 64-bit gather the
    // vectorized mix does not pay for itself.
    return {Backend::Neon,
            "neon",
            detail::addDoublesNeon,
            detail::orWordsNeon,
            detail::findNonZeroWordNeon,
            detail::probeFilter16Scalar};
#endif
#endif // !DELOREAN_FORCE_SCALAR
    return scalar_kernels;
}

const Kernels &
kernels()
{
    static const Kernels k = resolveKernels();
    return k;
}

} // namespace

Backend
backend()
{
    return kernels().backend;
}

const char *
backendName()
{
    return kernels().name;
}

void
addDoubles(double *dst, const double *src, std::size_t n)
{
    kernels().add_doubles(dst, src, n);
}

void
orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    kernels().or_words(dst, src, n);
}

std::size_t
findNonZeroWord(const std::uint64_t *words, std::size_t from,
                std::size_t n)
{
    return kernels().find_nonzero(words, from, n);
}

void
probeFilter16(const std::uint64_t *words, const Addr *keys, std::size_t n,
              std::uint8_t *out)
{
    kernels().probe_filter16(words, keys, n, out);
}

} // namespace delorean::simd
