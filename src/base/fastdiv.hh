/**
 * @file
 * Exact division/modulo by a runtime-invariant 64-bit divisor.
 *
 * The synthetic trace generator draws bounded random numbers for almost
 * every generated instruction (kernel pick, branch pick, random-kernel
 * line pick), and `x % bound` with a runtime divisor compiles to a
 * hardware divide — 20-40 cycles on current x86-64, by far the most
 * expensive single instruction in the Explorer replay decode loop
 * (bench_report). Every one of those divisors is loop-invariant (a
 * working-set size, a table size), so the division can be turned into
 * two or three multiplications with a precomputed reciprocal.
 *
 * This is the direct-computation method of Lemire, Kaser and Kurz
 * ("Faster Remainder by Direct Computation", 2019) at 64/128-bit
 * width: with c = ceil(2^128 / d) computed once,
 *
 *     n / d == (c * n) >> 128            (the high 64 bits of the
 *                                         128x64 product's top half)
 *     n % d == ((c * n mod 2^128) * d) >> 128
 *
 * exactly, for every n < 2^64 and every d in [1, 2^64). Exactness is
 * the whole point: FastDiv::div and FastDiv::mod are drop-in
 * replacements for `/` and `%`, so RNG draw streams and generated
 * addresses are bit-identical to the plain-division code they replace
 * (tests/test_base.cc sweeps randomized and adversarial (n, d) pairs
 * against the hardware operators).
 */

#ifndef DELOREAN_BASE_FASTDIV_HH
#define DELOREAN_BASE_FASTDIV_HH

#include <cstdint>

#include "base/logging.hh"

namespace delorean
{

/** Precomputed reciprocal for exact division/modulo by a fixed d. */
class FastDiv
{
  public:
    /** An un-armed divider; div/mod must not be called. */
    FastDiv() = default;

    explicit FastDiv(std::uint64_t d) : d_(d)
    {
        fatal_if(d == 0, "FastDiv: divisor must be non-zero");
        // c = ceil(2^128 / d) = floor((2^128 - 1) / d) + 1 for any d
        // that is not a power of two; for powers of two the +1 makes
        // c = 2^128 / d exactly, which the identities below also
        // accept. The one-time 128-bit division is fine here. For
        // d = 1 the constant wraps to 0 (2^128 needs 129 bits); mod
        // and negMod stay correct, div() special-cases it.
        const unsigned __int128 numer = ~(unsigned __int128)0;
        const unsigned __int128 c = numer / d + 1;
        c_hi_ = std::uint64_t(c >> 64);
        c_lo_ = std::uint64_t(c);
        neg_mod_ = mod(std::uint64_t(0) - d);
    }

    std::uint64_t divisor() const { return d_; }

    /**
     * (2^64 - d) % d — the rejection threshold of
     * Rng::nextBounded(d), cached so a bounded draw by an invariant
     * divisor costs no division at all.
     */
    std::uint64_t negMod() const { return neg_mod_; }

    /** Exact n / d_. */
    std::uint64_t
    div(std::uint64_t n) const
    {
        // d = 1 is the one divisor whose reciprocal does not fit:
        // c = 2^128 needs 129 bits and wraps to 0 in the constructor.
        // The wrapped constant still computes mod/negMod correctly
        // (everything is a multiple of 1, remainder 0), but div would
        // return 0 — special-case it. The branch predicts perfectly:
        // d_ is invariant per instance.
        if (d_ == 1)
            return n;
        // (c * n) >> 128 where c = c_hi * 2^64 + c_lo.
        const unsigned __int128 lo = (unsigned __int128)c_lo_ * n;
        const unsigned __int128 hi = (unsigned __int128)c_hi_ * n;
        return std::uint64_t((hi + (lo >> 64)) >> 64);
    }

    /** Exact n % d_. */
    std::uint64_t
    mod(std::uint64_t n) const
    {
        // low 128 bits of c * n ...
        const unsigned __int128 lo = (unsigned __int128)c_lo_ * n;
        const unsigned __int128 frac =
            ((unsigned __int128)c_hi_ * n + (lo >> 64)) << 64 |
            (std::uint64_t)lo;
        // ... times d, top 64 bits: frac is the fractional part of
        // n/d in 0.128 fixed point, so frac * d >> 128 is the
        // remainder.
        const unsigned __int128 m_lo =
            (unsigned __int128)(std::uint64_t)frac * d_;
        const unsigned __int128 m_hi =
            (unsigned __int128)(std::uint64_t)(frac >> 64) * d_;
        return std::uint64_t((m_hi + (m_lo >> 64)) >> 64);
    }

  private:
    std::uint64_t d_ = 0;
    std::uint64_t c_hi_ = 0;
    std::uint64_t c_lo_ = 0;
    std::uint64_t neg_mod_ = 0;
};

} // namespace delorean

#endif // DELOREAN_BASE_FASTDIV_HH
