/**
 * @file
 * Log2-bucketed histogram for reuse/stack distance distributions.
 *
 * Reuse distances span nine orders of magnitude (a handful of instructions
 * up to a billion), so statistical cache models conventionally histogram
 * them in logarithmic buckets with linear sub-buckets for resolution.
 * This is the shared container for the StatStack/StatCache inputs and for
 * diagnostic distributions in the stats package.
 */

#ifndef DELOREAN_BASE_HISTOGRAM_HH
#define DELOREAN_BASE_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace delorean
{

/**
 * Histogram over uint64 values with log2 buckets, each split into a fixed
 * number of linear sub-buckets. Samples carry a weight so sparse sampling
 * (one sampled reuse stands for `period` real ones) can be represented
 * faithfully.
 */
class LogHistogram
{
  public:
    /**
     * @param sub_buckets linear sub-buckets per power of two (resolution);
     *        must be a power of two.
     */
    explicit LogHistogram(unsigned sub_buckets = 8);

    /** Add @p weight samples of @p value. */
    void add(std::uint64_t value, double weight = 1.0);

    /** Merge another histogram (same sub-bucket layout) into this one. */
    void merge(const LogHistogram &other);

    /** Remove all samples. */
    void clear();

    /** Total sample weight. */
    double totalWeight() const { return total_weight_; }

    /** Number of distinct non-empty buckets. */
    std::size_t nonEmptyBuckets() const;

    /** Weighted mean of the recorded values (bucket midpoints). */
    double mean() const;

    /**
     * P(value <= x): fraction of sample weight at or below @p x,
     * interpolating linearly within the containing bucket.
     */
    double cdf(std::uint64_t x) const;

    /** P(value > x) = 1 - cdf(x). */
    double survival(std::uint64_t x) const { return 1.0 - cdf(x); }

    /** Smallest value v such that cdf(v) >= q (q in [0,1]). */
    std::uint64_t quantile(double q) const;

    /**
     * Iterate over non-empty buckets as (lowValue, highValueExclusive,
     * weight) triples, in increasing value order.
     */
    struct Bucket
    {
        std::uint64_t low;
        /**
         * Exclusive upper bound. Caveat: the topmost sub-bucket's
         * bound is 2^64, which wraps to 0 — `high - low` still wraps
         * back to the true width, so derive widths and containment
         * from it (`x - low < high - low`) instead of comparing high
         * directly.
         */
        std::uint64_t high;
        double weight;
        /** Midpoint used when a single representative value is needed. */
        std::uint64_t mid() const { return low + (high - low) / 2; }
    };

    std::vector<Bucket> buckets() const;

    /** Sentinel for "no further non-empty bucket". */
    static constexpr std::size_t npos = ~std::size_t(0);

    /**
     * Index of the first non-empty bucket at or after @p from, or
     * npos. Scans the bit-packed occupancy words (one u64 covers 64
     * buckets), so merge-walks over sparse histograms — the StatStack
     * solver and the Kaplan-Meier estimator — skip empty runs in a
     * couple of instructions instead of probing bucket by bucket.
     */
    std::size_t nextNonEmpty(std::size_t from) const;

    /** The bucket at index @p idx (any occupancy), bounds included. */
    Bucket
    bucketAt(std::size_t idx) const
    {
        std::uint64_t low, high;
        bucketRange(idx, low, high);
        return {low, high, idx < weights_.size() ? weights_[idx] : 0.0};
    }

    /**
     * Cursor over the non-empty buckets in increasing value order —
     * the building block of the merge-walks (the StatStack solver and
     * the Kaplan-Meier estimator walk an event and a censoring
     * histogram in lockstep), so the walk convention lives in one
     * place. Materializes nothing: it rides nextNonEmpty()/bucketAt().
     */
    class NonEmptyCursor
    {
      public:
        explicit NonEmptyCursor(const LogHistogram &hist)
            : hist_(hist), idx_(hist.nextNonEmpty(0))
        {
            if (valid())
                bucket_ = hist_.bucketAt(idx_);
        }

        bool valid() const { return idx_ != npos; }

        /** Current bucket; only meaningful while valid(). */
        const Bucket &bucket() const { return bucket_; }

        void
        advance()
        {
            idx_ = hist_.nextNonEmpty(idx_ + 1);
            if (valid())
                bucket_ = hist_.bucketAt(idx_);
        }

      private:
        const LogHistogram &hist_;
        std::size_t idx_;
        Bucket bucket_{};
    };

    /** Human-readable dump (for debugging / stats output). */
    std::string toString() const;

    /**
     * Exact, order-independent serialization of the histogram state:
     * the layout, the *accumulated* total weight (kept verbatim rather
     * than recomputed — floating-point summation order would otherwise
     * perturb it), and one (bucket index, weight) cell per bucket with
     * weight > 0, in increasing index order. Zero-weight occupancy
     * bits are dropped; they are conservative hints no consumer
     * observes. fromSnapshot() round-trips to an operator==-equal
     * histogram, which is what lets Explorer warm state persist to
     * disk (src/checkpoint/) without breaking bit-identical resume.
     */
    struct Snapshot
    {
        unsigned sub_buckets = 8;
        double total_weight = 0.0;
        std::vector<std::pair<std::uint64_t, double>> cells;
    };

    Snapshot snapshot() const;
    static LogHistogram fromSnapshot(const Snapshot &snap);

    /**
     * Exact equality: same sub-bucket layout, bitwise-identical
     * accumulated total weight, and bitwise-identical weight in every
     * bucket (absent cells count as 0.0, so trailing zeros and
     * conservative occupancy bits do not break equality).
     */
    bool operator==(const LogHistogram &other) const;

  private:
    /** Map a value to a dense bucket index. */
    std::size_t bucketIndex(std::uint64_t value) const;

    /** Inverse mapping: [low, high) covered by bucket @p idx. */
    void bucketRange(std::size_t idx, std::uint64_t &low,
                     std::uint64_t &high) const;

    /** Mark bucket @p idx in the occupancy bitmap. */
    void markOccupied(std::size_t idx);

    unsigned sub_buckets_;
    int sub_shift_;
    std::vector<double> weights_;
    /**
     * Bit-packed occupancy: bit i set means bucket i has ever
     * received weight (conservative — a zero-weight add sets it, so
     * consumers still check weights_[i] > 0). Kept in lockstep by
     * add/merge/clear.
     */
    std::vector<std::uint64_t> occupied_;
    double total_weight_;
};

} // namespace delorean

#endif // DELOREAN_BASE_HISTOGRAM_HH
