/**
 * @file
 * Address manipulation helpers: cacheline and page extraction.
 *
 * DeLorean's watchpoint machinery works at *page* granularity (the paper
 * uses the OS page-protection mechanism) while all cache modeling works at
 * *cacheline* granularity, so both mappings live here, next to each other.
 */

#ifndef DELOREAN_BASE_ADDR_HH
#define DELOREAN_BASE_ADDR_HH

#include "base/intmath.hh"
#include "base/types.hh"

namespace delorean
{

/** Cacheline size used across the library (Table 1: 64 B lines). */
constexpr Addr line_size = 64;
constexpr int line_shift = 6;

/** Host/guest page size for the watchpoint (page protection) machinery. */
constexpr Addr page_size = 4096;
constexpr int page_shift = 12;

static_assert(Addr(1) << line_shift == line_size);
static_assert(Addr(1) << page_shift == page_size);

/** @return the cacheline number containing byte address @p addr. */
constexpr Addr
lineOf(Addr addr)
{
    return addr >> line_shift;
}

/** @return the first byte address of cacheline number @p line. */
constexpr Addr
lineAddr(Addr line)
{
    return line << line_shift;
}

/** @return the page number containing byte address @p addr. */
constexpr Addr
pageOf(Addr addr)
{
    return addr >> page_shift;
}

/** @return the page number containing cacheline number @p line. */
constexpr Addr
pageOfLine(Addr line)
{
    return line >> (page_shift - line_shift);
}

/** Number of cachelines per page (64 for 4 KiB pages / 64 B lines). */
constexpr Addr lines_per_page = page_size / line_size;

} // namespace delorean

#endif // DELOREAN_BASE_ADDR_HH
