/**
 * @file
 * Portable SIMD kernels for the merge-walk and prefilter hot loops.
 *
 * A deliberately tiny surface: four kernels, each one an operation the
 * library's hot paths spend real time in and each one *bit-identical*
 * to its scalar loop by construction —
 *
 *  - addDoubles: elementwise dst[i] += src[i]. IEEE-754 addition is
 *    deterministic per element, and elementwise vector adds keep every
 *    element's operand pair unchanged, so the vector form is exact.
 *    (Reductions are NOT offered: lane-splitting a running sum
 *    reassociates it and changes the low bits.)
 *  - orWords / findNonZeroWord: bitwise OR and first-nonzero scan over
 *    u64 words — integer ops, trivially exact.
 *  - probeFilter16: batched AddrBitFilter probes (splitmix64 mix + bit
 *    test on a 2^16-bit filter). Pure integer arithmetic, exact.
 *
 * Backend selection: the AVX2 kernels live in their own translation
 * unit (simd_avx2.cc) compiled with -mavx2 while the rest of the
 * library keeps the default ISA — nothing outside that TU can emit
 * AVX/FMA encodings and perturb pinned floating-point results. At
 * startup the dispatcher picks AVX2 when the TU was compiled with it
 * AND the CPU reports it (x86-64), NEON on aarch64 (baseline there),
 * and the scalar loops otherwise. `DELOREAN_SIMD=scalar` in the
 * environment forces the scalar backend at run time (the CI
 * forced-scalar job and the bit-identity tests use this), and
 * configuring with -DDELOREAN_FORCE_SCALAR=ON removes the vector
 * backends at build time.
 */

#ifndef DELOREAN_BASE_SIMD_HH
#define DELOREAN_BASE_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "base/types.hh"

namespace delorean::simd
{

enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

/** The backend selected for this process (resolved once, at first use). */
Backend backend();

/** Human-readable backend name ("scalar", "avx2", "neon"). */
const char *backendName();

/** dst[i] += src[i] for i in [0, n). Elementwise — bit-exact. */
void addDoubles(double *dst, const double *src, std::size_t n);

/** dst[i] |= src[i] for i in [0, n). */
void orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n);

/**
 * @return the smallest i in [from, n) with words[i] != 0, or n.
 * (Callers scan occupancy bitmaps; the common case is long zero runs.)
 */
std::size_t findNonZeroWord(const std::uint64_t *words, std::size_t from,
                            std::size_t n);

/**
 * Batched AddrBitFilter probe: out[i] = bit mixAddr(keys[i]) & 0xffff
 * of the 2^16-bit filter backed by @p words (1024 u64 words). Matches
 * AddrBitFilter::mayContain exactly; the caller handles the
 * empty-filter (unallocated) case.
 */
void probeFilter16(const std::uint64_t *words, const Addr *keys,
                   std::size_t n, std::uint8_t *out);

namespace detail
{

// Scalar reference kernels (simd.cc) — also the tail loops of the
// vector backends.
void addDoublesScalar(double *dst, const double *src, std::size_t n);
void orWordsScalar(std::uint64_t *dst, const std::uint64_t *src,
                   std::size_t n);
std::size_t findNonZeroWordScalar(const std::uint64_t *words,
                                  std::size_t from, std::size_t n);
void probeFilter16Scalar(const std::uint64_t *words, const Addr *keys,
                         std::size_t n, std::uint8_t *out);

// AVX2 kernels (simd_avx2.cc). When that TU is built without -mavx2
// (non-x86 or forced-scalar builds) these compile to the scalar
// kernels and avx2Compiled() reports false, so the dispatcher never
// selects them.
bool avx2Compiled();
void addDoublesAvx2(double *dst, const double *src, std::size_t n);
void orWordsAvx2(std::uint64_t *dst, const std::uint64_t *src,
                 std::size_t n);
std::size_t findNonZeroWordAvx2(const std::uint64_t *words,
                                std::size_t from, std::size_t n);
void probeFilter16Avx2(const std::uint64_t *words, const Addr *keys,
                       std::size_t n, std::uint8_t *out);

} // namespace detail

} // namespace delorean::simd

#endif // DELOREAN_BASE_SIMD_HH
