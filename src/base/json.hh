/**
 * @file
 * Minimal JSON string-literal escaping.
 *
 * The library emits JSON from exactly two places — `tools/batch_run
 * --json` and the bench report writer (`bench/perf_harness.cc`) — and
 * both embed workload *specs*, which can contain anything a file path
 * can (`file:/tmp/a"b.dlt` is legal). This is the one shared helper
 * they need; full JSON serialization stays hand-rolled at the call
 * sites, where the fixed shape keeps `%.17g` round-tripping obvious.
 */

#ifndef DELOREAN_BASE_JSON_HH
#define DELOREAN_BASE_JSON_HH

#include <cstdio>
#include <string>

namespace delorean
{

/** Escape quotes, backslashes, and control bytes for a JSON string. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if ((unsigned char)c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace delorean

#endif // DELOREAN_BASE_JSON_HH
