/**
 * @file
 * Open-addressed flat hash map keyed by Addr.
 *
 * The directed-profiling and vicinity hot loops do one hash lookup per
 * memory reference (src/profiling/). `std::unordered_map` pays a
 * pointer chase per probe (node-based buckets) and a hash of poor
 * quality for addresses (identity on most implementations, so
 * same-stride keys cluster). This map stores keys and values in two
 * contiguous arrays, probes linearly from a mixed (splitmix64) hash,
 * and keeps the load factor at most 1/2 — a miss costs a handful of
 * contiguous reads on one or two cachelines.
 *
 * Semantics match the `unordered_map` uses it replaces, with content
 * equality asserted against a reference `unordered_map` by
 * tests/test_base.cc on randomized key sets. Differences that are
 * deliberate and safe:
 *
 *  - iteration order differs (slot order, not bucket order): every
 *    caller either builds order-independent aggregates (histograms,
 *    per-line maps) or feeds order-insensitive consumers;
 *  - `invalid_addr` (~0) is reserved as the empty-slot sentinel — no
 *    cacheline or page number can collide with it (it would imply an
 *    address above 2^63 bytes).
 *
 * erase() uses backward-shift deletion, so probes never have to walk
 * tombstones — lookup cost stays flat no matter how many samples a
 * window retires.
 */

#ifndef DELOREAN_BASE_FLAT_HASH_HH
#define DELOREAN_BASE_FLAT_HASH_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/simd.hh"
#include "base/types.hh"

namespace delorean
{

/** Mix an address into a well-distributed 64-bit hash (splitmix64). */
constexpr std::uint64_t
mixAddr(Addr x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Bit-packed membership prefilter over addresses: 2^16 bits (8 KiB,
 * L1-resident), indexed by the low bits of mixAddr. A clear bit
 * proves absence; a set bit means "probe the exact structure".
 * Bits are only cleared wholesale (reset()), so there are never false
 * negatives — the property the watchpoint and directed-profiling fast
 * paths rely on for bit-identical trap accounting. Storage is
 * allocated lazily on the first set().
 */
class AddrBitFilter
{
  public:
    bool
    mayContain(Addr key) const
    {
        if (words_.empty())
            return false;
        const std::uint64_t h = mixAddr(key) & (bits - 1);
        return (words_[h >> 6] >> (h & 63)) & 1;
    }

    /**
     * Batched probe: may[i] = mayContain(keys[i]) for i in [0, n) —
     * the vector backends hash four keys per step (base/simd.hh). The
     * answers are bit-identical to n scalar mayContain() calls, so
     * batch-prefiltered consumers keep exact trap accounting.
     */
    void
    mayContainAll(const Addr *keys, std::size_t n, std::uint8_t *may) const
    {
        if (words_.empty()) {
            std::fill(may, may + n, std::uint8_t(0));
            return;
        }
        static_assert(bits == std::size_t(1) << 16,
                      "probeFilter16 hard-codes the filter geometry");
        simd::probeFilter16(words_.data(), keys, n, may);
    }

    void
    set(Addr key)
    {
        if (words_.empty())
            words_.assign(bits / 64, 0);
        const std::uint64_t h = mixAddr(key) & (bits - 1);
        words_[h >> 6] |= std::uint64_t(1) << (h & 63);
    }

    /** Clear every bit (keeps the allocation). */
    void
    reset()
    {
        std::fill(words_.begin(), words_.end(), 0);
    }

  private:
    static constexpr std::size_t bits = std::size_t(1) << 16;
    std::vector<std::uint64_t> words_;
};

/**
 * Open-addressed Addr -> V map (linear probing, power-of-two
 * capacity, <= 1/2 load). V must be default-constructible and movable.
 */
template <typename V>
class FlatAddrMap
{
  public:
    FlatAddrMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        keys_.assign(keys_.size(), invalid_addr);
        size_ = 0;
    }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = 16;
        while (cap < 2 * n)
            cap *= 2;
        if (cap > keys_.size())
            rehash(cap);
    }

    /** @return the value slot for @p key, or nullptr if absent. */
    V *
    find(Addr key)
    {
        if (keys_.empty())
            return nullptr;
        std::size_t i = mixAddr(key) & mask_;
        while (true) {
            const Addr k = keys_[i];
            if (k == key)
                return &vals_[i];
            if (k == invalid_addr)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    const V *
    find(Addr key) const
    {
        return const_cast<FlatAddrMap *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /**
     * Insert (key, value) unless the key is present.
     * @return pair of (value slot, inserted?) — try_emplace semantics.
     */
    std::pair<V *, bool>
    emplace(Addr key, V value = V())
    {
        panic_if(key == invalid_addr,
                 "FlatAddrMap: the ~0 sentinel cannot be a key");
        if (2 * (size_ + 1) > keys_.size())
            rehash(keys_.empty() ? 16 : 2 * keys_.size());
        std::size_t i = mixAddr(key) & mask_;
        while (true) {
            const Addr k = keys_[i];
            if (k == key)
                return {&vals_[i], false};
            if (k == invalid_addr) {
                keys_[i] = key;
                vals_[i] = std::move(value);
                ++size_;
                return {&vals_[i], true};
            }
            i = (i + 1) & mask_;
        }
    }

    /** Remove @p key. @return true iff it was present. */
    bool
    erase(Addr key)
    {
        if (keys_.empty())
            return false;
        std::size_t i = mixAddr(key) & mask_;
        while (true) {
            const Addr k = keys_[i];
            if (k == invalid_addr)
                return false;
            if (k == key)
                break;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: close the probe chain so lookups
        // never need tombstones.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            const Addr k = keys_[j];
            if (k == invalid_addr)
                break;
            const std::size_t ideal = mixAddr(k) & mask_;
            // Move k into the hole iff its probe chain passes through
            // it (cyclic interval check).
            const bool reachable =
                hole <= j ? (ideal <= hole || ideal > j)
                          : (ideal <= hole && ideal > j);
            if (reachable) {
                keys_[hole] = k;
                vals_[hole] = std::move(vals_[j]);
                hole = j;
            }
        }
        keys_[hole] = invalid_addr;
        vals_[hole] = V();
        --size_;
        return true;
    }

    /** Visit every (key, value) pair in slot order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] != invalid_addr)
                f(keys_[i], vals_[i]);
    }

  private:
    void
    rehash(std::size_t cap)
    {
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        keys_.assign(cap, invalid_addr);
        vals_.assign(cap, V());
        mask_ = cap - 1;
        size_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == invalid_addr)
                continue;
            std::size_t j = mixAddr(old_keys[i]) & mask_;
            while (keys_[j] != invalid_addr)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            vals_[j] = std::move(old_vals[i]);
            ++size_;
        }
    }

    std::vector<Addr> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace delorean

#endif // DELOREAN_BASE_FLAT_HASH_HH
