/**
 * @file
 * Fundamental scalar types shared across the DeLorean library.
 *
 * The naming follows gem5: Addr for physical/virtual addresses, Tick for
 * modeled host time, and Counter for event counts. Keeping these as
 * explicit aliases (rather than bare uint64_t) documents intent at API
 * boundaries.
 */

#ifndef DELOREAN_BASE_TYPES_HH
#define DELOREAN_BASE_TYPES_HH

#include <cstdint>

namespace delorean
{

/** A memory address (byte granularity). */
using Addr = std::uint64_t;

/** A count of dynamically executed instructions. */
using InstCount = std::uint64_t;

/** A count of memory references (loads + stores). */
using RefCount = std::uint64_t;

/** Modeled host time in host clock cycles. */
using HostCycles = std::uint64_t;

/** Simulated (target) time in target clock cycles. */
using Tick = std::uint64_t;

/** Generic event counter. */
using Counter = std::uint64_t;

/** Invalid / not-present address sentinel. */
constexpr Addr invalid_addr = ~Addr(0);

} // namespace delorean

#endif // DELOREAN_BASE_TYPES_HH
