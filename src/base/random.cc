#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace delorean
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "Rng::nextRange: lo %llu > hi %llu",
             (unsigned long long)lo, (unsigned long long)hi);
    return lo + nextBounded(hi - lo + 1);
}

std::uint64_t
Rng::nextGeometric(std::uint64_t period)
{
    panic_if(period == 0, "Rng::nextGeometric called with period 0");
    if (period == 1)
        return 1;
    // Inverse-CDF sampling: gap = ceil(ln(u) / ln(1 - 1/period)).
    const double u = 1.0 - nextDouble(); // in (0, 1]
    const double denom = std::log(1.0 - 1.0 / double(period));
    const double gap = std::ceil(std::log(u) / denom);
    return gap < 1.0 ? 1 : std::uint64_t(gap);
}

double
Rng::nextGaussian()
{
    // Irwin-Hall with 12 uniforms: mean 6, variance 1.
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += nextDouble();
    return sum - 6.0;
}

} // namespace delorean
