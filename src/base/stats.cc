#include "base/stats.hh"

#include <iomanip>

namespace delorean::statistics
{

void
StatGroup::dump(std::ostream &os) const
{
    const auto emit = [&](const std::string &stat, double value,
                          const std::string &desc) {
        os << std::left << std::setw(40) << (name_ + "." + stat)
           << std::right << std::setw(16) << value
           << "  # " << desc << "\n";
    };

    for (const auto *s : scalars_)
        emit(s->name(), s->value(), s->desc());
    for (const auto *a : averages_)
        emit(a->name(), a->value(), a->desc());
    for (const auto *d : dists_) {
        emit(d->name() + "::mean", d->histogram().mean(), d->desc());
        emit(d->name() + "::total", d->histogram().totalWeight(),
             d->desc());
    }
}

void
StatGroup::resetAll()
{
    for (auto *s : scalars_)
        s->reset();
    for (auto *a : averages_)
        a->reset();
    for (auto *d : dists_)
        d->reset();
}

} // namespace delorean::statistics
