#include "base/histogram.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/simd.hh"

namespace delorean
{

LogHistogram::LogHistogram(unsigned sub_buckets)
    : sub_buckets_(sub_buckets),
      sub_shift_(0),
      total_weight_(0.0)
{
    fatal_if(!isPowerOf2(std::uint64_t(sub_buckets)) || sub_buckets == 0,
             "LogHistogram sub_buckets must be a power of two, got %u",
             sub_buckets);
    sub_shift_ = floorLog2(std::uint64_t(sub_buckets));
}

std::size_t
LogHistogram::bucketIndex(std::uint64_t value) const
{
    const int k = sub_shift_;
    if (value < sub_buckets_)
        return std::size_t(value);
    const int e = floorLog2(value);
    // The octave [2^e, 2^(e+1)) is divided into 2^k linear sub-buckets of
    // width 2^(e-k). For e == k this degenerates to unit buckets, making
    // the mapping continuous with the small-value linear region.
    const std::uint64_t sub = (value - (std::uint64_t(1) << e)) >> (e - k);
    return (std::size_t(e - k + 1) << k) + std::size_t(sub);
}

void
LogHistogram::bucketRange(std::size_t idx, std::uint64_t &low,
                          std::uint64_t &high) const
{
    const int k = sub_shift_;
    if (idx < (std::size_t(2) << k)) {
        low = idx;
        high = idx + 1;
        return;
    }
    const std::size_t octave = idx >> k;
    const int e = int(octave) + k - 1;
    const std::uint64_t sub = idx & (sub_buckets_ - 1);
    const std::uint64_t width = std::uint64_t(1) << (e - k);
    low = (std::uint64_t(1) << e) + sub * width;
    high = low + width;
}

void
LogHistogram::markOccupied(std::size_t idx)
{
    const std::size_t word = idx >> 6;
    if (word >= occupied_.size())
        occupied_.resize(word + 1, 0);
    occupied_[word] |= std::uint64_t(1) << (idx & 63);
}

std::size_t
LogHistogram::nextNonEmpty(std::size_t from) const
{
    const std::size_t nwords = occupied_.size();
    std::size_t word = from >> 6;
    if (word >= nwords)
        return npos;
    std::uint64_t bits =
        occupied_[word] & (~std::uint64_t(0) << (from & 63));
    while (true) {
        while (bits) {
            const std::size_t idx =
                (word << 6) + std::size_t(std::countr_zero(bits));
            // Occupancy is conservative; confirm real weight.
            if (idx < weights_.size() && weights_[idx] > 0.0)
                return idx;
            bits &= bits - 1;
        }
        // Empty runs dominate sparse histograms; the vectorized word
        // scan (base/simd.hh) clears them 4 words per step.
        word = simd::findNonZeroWord(occupied_.data(), word + 1, nwords);
        if (word >= nwords)
            return npos;
        bits = occupied_[word];
    }
}

void
LogHistogram::add(std::uint64_t value, double weight)
{
    const std::size_t idx = bucketIndex(value);
    if (idx >= weights_.size())
        weights_.resize(idx + 1, 0.0);
    weights_[idx] += weight;
    markOccupied(idx);
    total_weight_ += weight;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    panic_if(sub_buckets_ != other.sub_buckets_,
             "LogHistogram::merge with mismatched layouts (%u vs %u)",
             sub_buckets_, other.sub_buckets_);
    if (other.weights_.size() > weights_.size())
        weights_.resize(other.weights_.size(), 0.0);
    // Contiguous elementwise sums: each bucket adds the same operand
    // pair under any vector width, so the SIMD kernels are exact
    // (base/simd.hh), and the occupancy words just OR.
    simd::addDoubles(weights_.data(), other.weights_.data(),
                     other.weights_.size());
    if (other.occupied_.size() > occupied_.size())
        occupied_.resize(other.occupied_.size(), 0);
    simd::orWords(occupied_.data(), other.occupied_.data(),
                  other.occupied_.size());
    total_weight_ += other.total_weight_;
}

void
LogHistogram::clear()
{
    weights_.clear();
    occupied_.clear();
    total_weight_ = 0.0;
}

std::size_t
LogHistogram::nonEmptyBuckets() const
{
    std::size_t n = 0;
    for (std::size_t i = nextNonEmpty(0); i != npos;
         i = nextNonEmpty(i + 1))
        ++n;
    return n;
}

double
LogHistogram::mean() const
{
    if (total_weight_ <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = nextNonEmpty(0); i != npos;
         i = nextNonEmpty(i + 1)) {
        std::uint64_t low, high;
        bucketRange(i, low, high);
        sum += weights_[i] * (double(low) + double(high - low) / 2.0);
    }
    return sum / total_weight_;
}

double
LogHistogram::cdf(std::uint64_t x) const
{
    if (total_weight_ <= 0.0)
        return 0.0;

    // Exactly one bucket can straddle x — the one whose index
    // bucketIndex(x) names; every bucket below it lies entirely at or
    // under x. The prefix sum rides the sparse occupancy walk (and so
    // the SIMD word scan): adding an empty bucket's +0.0 to a
    // non-negative partial sum is bitwise-neutral, so skipping empty
    // runs keeps the in-order sum bit-identical to a dense walk. The
    // sum itself stays serial — lane-splitting a running FP sum would
    // reassociate it.
    const std::size_t straddle = bucketIndex(x);
    const std::size_t full = std::min(straddle, weights_.size());
    double below = 0.0;
    for (std::size_t i = nextNonEmpty(0); i != npos && i < full;
         i = nextNonEmpty(i + 1))
        below += weights_[i];
    if (straddle < weights_.size() && weights_[straddle] > 0.0) {
        std::uint64_t low, high;
        bucketRange(straddle, low, high);
        const double frac = double(x - low + 1) / double(high - low);
        below += weights_[straddle] * frac;
    }
    return below / total_weight_;
}

std::uint64_t
LogHistogram::quantile(double q) const
{
    if (total_weight_ <= 0.0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * total_weight_;
    double acc = 0.0;
    for (std::size_t i = nextNonEmpty(0); i != npos;
         i = nextNonEmpty(i + 1)) {
        if (acc + weights_[i] >= target) {
            std::uint64_t low, high;
            bucketRange(i, low, high);
            const double frac = (target - acc) / weights_[i];
            return low + std::uint64_t(frac * double(high - low));
        }
        acc += weights_[i];
    }
    std::uint64_t low, high;
    bucketRange(weights_.size() - 1, low, high);
    return high - 1;
}

std::vector<LogHistogram::Bucket>
LogHistogram::buckets() const
{
    std::vector<Bucket> out;
    out.reserve(nonEmptyBuckets());
    for (std::size_t i = nextNonEmpty(0); i != npos;
         i = nextNonEmpty(i + 1))
        out.push_back(bucketAt(i));
    return out;
}

LogHistogram::Snapshot
LogHistogram::snapshot() const
{
    Snapshot snap;
    snap.sub_buckets = sub_buckets_;
    snap.total_weight = total_weight_;
    for (std::size_t i = nextNonEmpty(0); i != npos;
         i = nextNonEmpty(i + 1))
        snap.cells.emplace_back(std::uint64_t(i), weights_[i]);
    return snap;
}

LogHistogram
LogHistogram::fromSnapshot(const Snapshot &snap)
{
    LogHistogram h(snap.sub_buckets);
    for (const auto &[idx, weight] : snap.cells) {
        panic_if(weight <= 0.0,
                 "LogHistogram snapshot cell with non-positive weight");
        if (idx >= h.weights_.size())
            h.weights_.resize(std::size_t(idx) + 1, 0.0);
        h.weights_[std::size_t(idx)] = weight;
        h.markOccupied(std::size_t(idx));
    }
    // Restored verbatim, never recomputed: the original accumulation
    // order is gone, and resumming would change the low bits.
    h.total_weight_ = snap.total_weight;
    return h;
}

bool
LogHistogram::operator==(const LogHistogram &other) const
{
    if (sub_buckets_ != other.sub_buckets_ ||
        total_weight_ != other.total_weight_)
        return false;
    const std::size_t n =
        std::max(weights_.size(), other.weights_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const double a = i < weights_.size() ? weights_[i] : 0.0;
        const double b =
            i < other.weights_.size() ? other.weights_[i] : 0.0;
        if (a != b)
            return false;
    }
    return true;
}

std::string
LogHistogram::toString() const
{
    std::ostringstream os;
    os << "LogHistogram(total=" << total_weight_ << ")";
    for (const auto &b : buckets())
        os << "\n  [" << b.low << ", " << b.high << "): " << b.weight;
    return os.str();
}

} // namespace delorean
