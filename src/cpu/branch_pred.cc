#include "cpu/branch_pred.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace delorean::cpu
{

TournamentPredictor::TournamentPredictor(const BranchPredConfig &config)
    : config_(config),
      local_hist_(config.local_entries, 0),
      local_ctr_(std::size_t(1) << config.local_hist_bits, 1),
      global_ctr_(config.global_entries, 1),
      choice_ctr_(config.choice_entries, 1),
      btb_(config.btb_entries)
{
    fatal_if(!isPowerOf2(std::uint64_t(config.local_entries)) ||
             !isPowerOf2(std::uint64_t(config.global_entries)) ||
             !isPowerOf2(std::uint64_t(config.choice_entries)) ||
             !isPowerOf2(std::uint64_t(config.btb_entries)),
             "branch predictor table sizes must be powers of two");
}

void
TournamentPredictor::bump(std::uint8_t &c, bool up)
{
    if (up) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

bool
TournamentPredictor::predictAndUpdate(Addr pc, bool taken, Addr target)
{
    ++lookups_;

    const std::size_t pc_idx = (pc >> 2) & (config_.local_entries - 1);
    const std::uint16_t lhist =
        local_hist_[pc_idx] &
        std::uint16_t((1u << config_.local_hist_bits) - 1);
    const std::size_t ghist_idx =
        global_hist_ & (config_.global_entries - 1);
    const std::size_t choice_idx =
        global_hist_ & (config_.choice_entries - 1);

    const bool local_pred = counterTaken(local_ctr_[lhist]);
    const bool global_pred = counterTaken(global_ctr_[ghist_idx]);
    const bool use_global = counterTaken(choice_ctr_[choice_idx]);
    const bool pred = use_global ? global_pred : local_pred;

    // Choice update: strengthen the component that was right when they
    // disagree.
    if (local_pred != global_pred)
        bump(choice_ctr_[choice_idx], global_pred == taken);

    bump(local_ctr_[lhist], taken);
    bump(global_ctr_[ghist_idx], taken);

    local_hist_[pc_idx] =
        std::uint16_t((lhist << 1) | (taken ? 1 : 0));
    global_hist_ =
        ((global_hist_ << 1) | (taken ? 1u : 0u)) &
        ((1u << config_.global_hist_bits) - 1);

    bool redirect = pred != taken;

    // Even a correctly predicted taken branch redirects if the target is
    // unknown to the BTB.
    if (taken) {
        BtbEntry &entry =
            btb_[(pc >> 2) & (config_.btb_entries - 1)];
        if (entry.tag != pc || entry.target != target) {
            if (!redirect) {
                ++btb_misses_;
                redirect = true;
            }
            entry.tag = pc;
            entry.target = target;
        }
    }

    if (redirect)
        ++mispredicts_;
    return redirect;
}

void
TournamentPredictor::reset()
{
    std::fill(local_hist_.begin(), local_hist_.end(), 0);
    std::fill(local_ctr_.begin(), local_ctr_.end(), 1);
    std::fill(global_ctr_.begin(), global_ctr_.end(), 1);
    std::fill(choice_ctr_.begin(), choice_ctr_.end(), 1);
    global_hist_ = 0;
    for (auto &e : btb_)
        e = BtbEntry{};
    lookups_ = mispredicts_ = btb_misses_ = 0;
}

double
TournamentPredictor::mispredictRate() const
{
    return lookups_ ? double(mispredicts_) / double(lookups_) : 0.0;
}

} // namespace delorean::cpu
