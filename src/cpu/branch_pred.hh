/**
 * @file
 * Tournament branch predictor + BTB per Table 1 of the paper:
 * 2-bit choice counters (8k entries), local 2-bit counters (2k entries),
 * global 2-bit counters (8k entries), 4k-entry BTB.
 */

#ifndef DELOREAN_CPU_BRANCH_PRED_HH
#define DELOREAN_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace delorean::cpu
{

/** Sizing knobs; defaults match Table 1. */
struct BranchPredConfig
{
    unsigned local_entries = 2048;
    unsigned global_entries = 8192;
    unsigned choice_entries = 8192;
    unsigned btb_entries = 4096;
    unsigned local_hist_bits = 10;
    unsigned global_hist_bits = 13;
};

/**
 * Classic Alpha-21264-style tournament predictor.
 *
 * The detailed simulator calls predictAndUpdate() once per dynamic
 * conditional branch; a return value of true means the front end was
 * redirected (direction mispredict, or a taken branch whose target missed
 * in the BTB).
 */
class TournamentPredictor
{
  public:
    explicit TournamentPredictor(const BranchPredConfig &config = {});

    /**
     * Predict the branch at @p pc, then update all tables with the
     * resolved outcome.
     *
     * @param pc     branch PC
     * @param taken  resolved direction
     * @param target resolved target (for BTB training)
     * @return true if this branch redirects the pipeline (mispredict)
     */
    bool predictAndUpdate(Addr pc, bool taken, Addr target);

    /** Return to the cold state. */
    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t btbMisses() const { return btb_misses_; }

    /** Mispredicts per lookup (0 when no lookups). */
    double mispredictRate() const;

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool up);

    BranchPredConfig config_;

    std::vector<std::uint16_t> local_hist_; //!< per-PC history
    std::vector<std::uint8_t> local_ctr_;   //!< indexed by local history
    std::vector<std::uint8_t> global_ctr_;  //!< indexed by global history
    std::vector<std::uint8_t> choice_ctr_;  //!< indexed by global history
    std::uint32_t global_hist_ = 0;

    struct BtbEntry
    {
        Addr tag = invalid_addr;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb_;

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t btb_misses_ = 0;
};

} // namespace delorean::cpu

#endif // DELOREAN_CPU_BRANCH_PRED_HH
