/**
 * @file
 * Mechanistic out-of-order core timing model.
 *
 * This stands in for gem5's default O3 CPU (Table 1: 192-entry ROB,
 * 64-entry IQ/LQ/SQ, 8-wide issue). It is an analytical/mechanistic model
 * in the spirit of interval analysis rather than a cycle-accurate
 * pipeline: instructions dispatch at a bounded rate, occupy ROB/LQ/SQ
 * entries until in-order commit, loads complete after their memory
 * latency, pointer-chasing loads serialize on the previous load, and
 * front-end redirects (branch mispredicts, I-cache misses) stall
 * dispatch. DESIGN.md discusses why this substitution preserves what the
 * paper's figures measure (CPI deltas driven by hit/miss classification).
 *
 * Times are modeled as fractional cycles (double) so an 8-wide dispatch
 * advances 0.125 cycles per instruction.
 */

#ifndef DELOREAN_CPU_OOO_CORE_HH
#define DELOREAN_CPU_OOO_CORE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace delorean::cpu
{

/** Core sizing; defaults mirror Table 1 (gem5's default OoO x86 CPU). */
struct OooParams
{
    unsigned rob = 192;
    unsigned iq = 64;
    unsigned lq = 64;
    unsigned sq = 64;
    unsigned width = 8;

    /**
     * Sustainable dispatch ILP: real codes rarely sustain the full
     * 8-wide issue; this caps throughput the way dependence chains do in
     * a detailed model (mechanistic-model calibration constant).
     */
    double eff_ilp = 3.2;

    /** Front-end refill after a pipeline redirect, in cycles. */
    double redirect_penalty = 12.0;
};

/**
 * Streaming timing model: feed instructions in program order, read total
 * cycles at the end.
 */
class OooCoreModel
{
  public:
    explicit OooCoreModel(const OooParams &params = {});

    /** Start a new timing region at cycle 0. */
    void reset();

    /**
     * Account one instruction.
     *
     * @param exec_latency  execution latency in cycles (for loads: the
     *                      full memory latency of the access)
     * @param is_load / is_store  occupancy of LQ/SQ
     * @param dep_on_last_load    serialize behind the previous load
     * @return this instruction's completion (commit-ready) time
     */
    double dispatch(double exec_latency, bool is_load, bool is_store,
                    bool dep_on_last_load);

    /**
     * Pipeline redirect resolved at @p resolve_time (branch mispredict):
     * dispatch resumes redirect_penalty cycles later.
     */
    void redirect(double resolve_time);

    /** Front-end stall of @p cycles starting now (I-cache miss). */
    void frontendStall(double cycles);

    /** Estimated dispatch time of the next instruction (for MSHR "now"). */
    double now() const;

    /** Total cycles: in-order commit time of the last instruction. */
    double cycles() const { return last_commit_; }

    /** Instructions dispatched since reset(). */
    InstCount retired() const { return count_; }

  private:
    OooParams params_;

    std::vector<double> rob_commit_; //!< ring: commit time per ROB slot
    std::vector<double> lq_complete_;
    std::vector<double> sq_complete_;

    double dispatch_time_ = 0.0;
    double frontend_ready_ = 0.0;
    double last_commit_ = 0.0;
    double last_load_complete_ = 0.0;
    InstCount count_ = 0;
    InstCount loads_ = 0;
    InstCount stores_ = 0;
};

} // namespace delorean::cpu

#endif // DELOREAN_CPU_OOO_CORE_HH
