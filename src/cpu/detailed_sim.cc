#include "cpu/detailed_sim.hh"

#include "base/logging.hh"

namespace delorean::cpu
{

using cache::HitLevel;
using workload::InstType;

const char *
accessClassName(AccessClass c)
{
    switch (c) {
      case AccessClass::L1Hit:
        return "l1_hit";
      case AccessClass::MshrHit:
        return "mshr_hit";
      case AccessClass::LlcHit:
        return "llc_hit";
      case AccessClass::WarmingHit:
        return "warming_hit";
      case AccessClass::ConflictMiss:
        return "conflict_miss";
      case AccessClass::CapacityMiss:
        return "capacity_miss";
      case AccessClass::ColdMiss:
        return "cold_miss";
      case AccessClass::RealMiss:
        return "real_miss";
      case AccessClass::NumClasses:
        break;
    }
    return "?";
}

Counter
RegionStats::llcMisses() const
{
    return classCount(AccessClass::ConflictMiss) +
           classCount(AccessClass::CapacityMiss) +
           classCount(AccessClass::ColdMiss) +
           classCount(AccessClass::RealMiss);
}

Counter
RegionStats::llcAccesses() const
{
    return llcMisses() + classCount(AccessClass::LlcHit) +
           classCount(AccessClass::WarmingHit);
}

double
RegionStats::mpki() const
{
    return instructions ? double(llcMisses()) * 1000.0 /
                              double(instructions)
                        : 0.0;
}

void
RegionStats::add(const RegionStats &other)
{
    instructions += other.instructions;
    cycles += other.cycles;
    mem_refs += other.mem_refs;
    for (std::size_t i = 0; i < classes.size(); ++i)
        classes[i] += other.classes[i];
    branches += other.branches;
    branch_mispredicts += other.branch_mispredicts;
    icache_misses += other.icache_misses;
    prefetches_issued += other.prefetches_issued;
    prefetches_nullified += other.prefetches_nullified;
}

DetailedSimulator::DetailedSimulator(cache::CacheHierarchy &hierarchy,
                                     const DetailedSimConfig &config)
    : hier_(hierarchy),
      config_(config),
      core_(config.core),
      bpred_(config.bpred),
      l1d_mshr_(hierarchy.config().l1d.mshrs),
      llc_mshr_(hierarchy.config().llc.mshrs),
      prefetcher_(config.prefetcher)
{
}

void
DetailedSimulator::runPrefetcher(Addr pc, Addr line, bool miss,
                                 RegionStats &stats)
{
    if (!config_.prefetch)
        return;
    const auto candidates = prefetcher_.observe(pc, line, miss);
    for (const Addr cand : candidates) {
        if (hier_.llc().contains(cand)) {
            // Paper §6.3.2: prefetches to lines already (predicted to be)
            // present are nullified to save bandwidth.
            ++stats.prefetches_nullified;
        } else {
            hier_.llc().insert(cand, false);
            ++stats.prefetches_issued;
        }
    }
}

void
DetailedSimulator::warmRegion(workload::TraceSource &trace, InstCount n,
                              MemObserver *observer)
{
    Addr last_fetch_line = invalid_addr;
    RegionStats scratch; // prefetcher bookkeeping only

    for (InstCount i = 0; i < n; ++i) {
        const auto inst = trace.next();

        const Addr fetch_line = lineOf(inst.pc);
        if (fetch_line != last_fetch_line) {
            hier_.instAccess(fetch_line);
            last_fetch_line = fetch_line;
        }

        if (inst.isBranch()) {
            bpred_.predictAndUpdate(inst.pc, inst.taken, inst.target);
        } else if (inst.isMem()) {
            const Addr line = inst.line();
            if (observer)
                observer->memAccess(inst.pc, line, inst.isStore());
            const bool l1_hit = hier_.l1d().contains(line);
            const bool llc_hit = l1_hit || hier_.llc().contains(line);
            hier_.dataAccess(line, inst.isStore());
            if (!l1_hit)
                runPrefetcher(inst.pc, line, !llc_hit, scratch);
        }
    }
}

RegionStats
DetailedSimulator::simulate(workload::TraceSource &trace, InstCount n,
                            LlcClassifier *classifier)
{
    RegionStats stats;
    stats.instructions = n;

    core_.reset();
    l1d_mshr_.clear();
    llc_mshr_.clear();

    const auto &lat = hier_.config().lat;
    Addr last_fetch_line = invalid_addr;

    for (InstCount i = 0; i < n; ++i) {
        const auto inst = trace.next();

        // ---- front end: instruction fetch ------------------------------
        const Addr fetch_line = lineOf(inst.pc);
        if (fetch_line != last_fetch_line) {
            const HitLevel level = hier_.instAccess(fetch_line);
            if (level != HitLevel::L1) {
                ++stats.icache_misses;
                // Under statistical warming, an instruction line absent
                // from the lukewarm L1-I is a warming artifact: the hot
                // code working set (smaller than the L1-I by
                // construction, matching SPEC's negligible I-MPKI) is
                // resident in the fully warmed reference. Model it as a
                // front-end hit; the line still fills above.
                if (!classifier) {
                    core_.frontendStall(hier_.latency(level) -
                                        lat.l1_hit);
                }
            }
            last_fetch_line = fetch_line;
        }

        if (inst.isBranch()) {
            ++stats.branches;
            const bool redirect =
                bpred_.predictAndUpdate(inst.pc, inst.taken, inst.target);
            const double c =
                core_.dispatch(inst.latency, false, false, false);
            if (redirect) {
                ++stats.branch_mispredicts;
                core_.redirect(c);
            }
            continue;
        }

        if (!inst.isMem()) {
            core_.dispatch(inst.latency, false, false, false);
            continue;
        }

        // ---- data access -----------------------------------------------
        ++stats.mem_refs;
        const Addr line = inst.line();
        const bool write = inst.isStore();
        const Tick now = Tick(core_.now());

        AccessClass cls;
        double latency;

        const auto l1 = hier_.l1d().access(line, write);
        if (l1.hit) {
            if (l1d_mshr_.hit(line, now)) {
                cls = AccessClass::MshrHit;
                latency = double(l1d_mshr_.readyAt(line) - now);
            } else {
                cls = AccessClass::L1Hit;
                latency = lat.l1_hit;
            }
        } else {
            if (l1.writeback)
                hier_.llc().insert(l1.victim_line, true);

            const bool llc_resident = hier_.llc().contains(line);
            bool real_miss;
            if (llc_resident) {
                if (llc_mshr_.hit(line, now)) {
                    cls = AccessClass::MshrHit;
                } else {
                    cls = AccessClass::LlcHit;
                }
                real_miss = false;
            } else if (classifier) {
                cls = classifier->classifyMiss(inst.pc, line, write,
                                               stats.mem_refs - 1);
                panic_if(cls != AccessClass::WarmingHit &&
                         cls != AccessClass::ConflictMiss &&
                         cls != AccessClass::CapacityMiss &&
                         cls != AccessClass::ColdMiss,
                         "classifier returned invalid class %s",
                         accessClassName(cls));
                real_miss = cls != AccessClass::WarmingHit;
            } else {
                cls = AccessClass::RealMiss;
                real_miss = true;
            }

            // Fill the block in all cases (warming misses are serviced
            // as hits: the block is assumed to have been resident).
            if (!llc_resident) {
                hier_.llc().access(line, false);
                runPrefetcher(inst.pc, line, real_miss, stats);
            }

            double total;
            if (real_miss) {
                const Tick ready = now + lat.llc_hit + lat.mem;
                const Tick start = llc_mshr_.allocate(line, now, ready);
                total = double(start - now) + lat.llc_hit + lat.mem;
            } else if (cls == AccessClass::MshrHit) {
                total = double(llc_mshr_.readyAt(line) - now);
            } else {
                total = lat.llc_hit;
            }

            latency = double(lat.l1_hit) + total;
            l1d_mshr_.allocate(line, now, now + Tick(latency));
        }

        ++stats.classes[std::size_t(cls)];

        // Stores retire through the store queue without stalling the
        // dependence chain; loads expose their full latency.
        const double exec_lat = write ? double(inst.latency) : latency;
        core_.dispatch(exec_lat, inst.isLoad(), write, inst.dep_load);
    }

    stats.cycles = core_.cycles();
    return stats;
}

} // namespace delorean::cpu
