/**
 * @file
 * Detailed simulation of a sampled region.
 *
 * DetailedSimulator plays a window of the instruction stream against the
 * cache hierarchy, branch predictor, MSHRs and the mechanistic OoO core.
 * It has two modes:
 *
 *  - warmRegion(): "detailed warming" (paper §3.1.2) — functional updates
 *    of caches and branch predictor without timing; run for ~30 k
 *    instructions before each detailed region, producing the *lukewarm*
 *    state;
 *  - simulate(): the timed detailed region (10 k instructions in the
 *    paper). An optional LlcClassifier intercepts every access that
 *    misses in the (lukewarm) LLC and decides whether it is a real miss
 *    (conflict/capacity/cold) or a warming miss to be treated as a hit —
 *    this is the hook both RSW (CoolSim) and DSW (DeLorean's Analyst)
 *    plug into. Without a classifier every LLC miss is real (SMARTS).
 */

#ifndef DELOREAN_CPU_DETAILED_SIM_HH
#define DELOREAN_CPU_DETAILED_SIM_HH

#include <array>
#include <cstdint>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "cache/prefetcher.hh"
#include "cpu/branch_pred.hh"
#include "cpu/ooo_core.hh"
#include "workload/trace_source.hh"

namespace delorean::cpu
{

/** Classification of a data access in the detailed region (Figure 3). */
enum class AccessClass : std::uint8_t
{
    L1Hit,        //!< hit in the (lukewarm) L1
    MshrHit,      //!< delayed hit on an in-flight miss
    LlcHit,       //!< hit in the (lukewarm) LLC
    WarmingHit,   //!< LLC miss classified as warming artifact -> hit
    ConflictMiss, //!< predicted conflict miss (set full / stride model)
    CapacityMiss, //!< predicted capacity miss (stack distance > size)
    ColdMiss,     //!< first-ever access to the line
    RealMiss,     //!< actual miss against fully warmed state (SMARTS)
    NumClasses,
};

/** @return short label for @p c ("l1_hit", "warming_hit", ...). */
const char *accessClassName(AccessClass c);

/**
 * Decision hook for statistical warming: invoked for every data access
 * that misses in the lukewarm LLC, *before* the line is filled.
 * Implementations return one of WarmingHit / ConflictMiss / CapacityMiss
 * / ColdMiss (anything except WarmingHit is treated as a real miss).
 */
class LlcClassifier
{
  public:
    virtual ~LlcClassifier() = default;

    /**
     * @param pc    accessing instruction's PC
     * @param line  missing cacheline
     * @param write store?
     * @param region_ref_idx index of this access in the detailed
     *        region's memory-reference stream (0-based)
     */
    virtual AccessClass classifyMiss(Addr pc, Addr line, bool write,
                                     RefCount region_ref_idx) = 0;
};

/**
 * Observer of the memory accesses made during detailed warming; used to
 * train microarchitecture-independent models (e.g. the per-PC stride
 * detector) on the window both RSW and DSW can see in full.
 */
class MemObserver
{
  public:
    virtual ~MemObserver() = default;

    virtual void memAccess(Addr pc, Addr line, bool write) = 0;
};

/** Results of one detailed region. */
struct RegionStats
{
    InstCount instructions = 0;
    double cycles = 0.0;

    Counter mem_refs = 0;
    std::array<Counter, std::size_t(AccessClass::NumClasses)> classes{};

    Counter branches = 0;
    Counter branch_mispredicts = 0;
    Counter icache_misses = 0;

    Counter prefetches_issued = 0;
    Counter prefetches_nullified = 0;

    double cpi() const
    {
        return instructions ? cycles / double(instructions) : 0.0;
    }

    Counter classCount(AccessClass c) const
    {
        return classes[std::size_t(c)];
    }

    /** Accesses that were modeled as LLC misses (memory latency). */
    Counter llcMisses() const;

    /** Accesses that reached the LLC (L1 misses minus MSHR hits). */
    Counter llcAccesses() const;

    /** Modeled LLC misses per kilo-instruction. */
    double mpki() const;

    /** Accumulate (for whole-run aggregation across regions). */
    void add(const RegionStats &other);

    /** Exact (bitwise for cycles) equality — the parallel execution
     *  paths promise bit-identical statistics. */
    bool operator==(const RegionStats &other) const = default;
};

/** Knobs for the detailed simulator. */
struct DetailedSimConfig
{
    OooParams core;
    BranchPredConfig bpred;
    bool prefetch = false; //!< enable the LLC stride prefetcher
    cache::PrefetcherConfig prefetcher;
};

/**
 * Runs detailed warming and detailed simulation against a shared cache
 * hierarchy. The hierarchy and branch predictor live outside so warming
 * state persists across regions under the caller's control.
 */
class DetailedSimulator
{
  public:
    DetailedSimulator(cache::CacheHierarchy &hierarchy,
                      const DetailedSimConfig &config = {});

    /**
     * Functional (untimed) warming of caches and branch predictor for
     * @p n instructions. @p observer (optional) sees every data access.
     */
    void warmRegion(workload::TraceSource &trace, InstCount n,
                    MemObserver *observer = nullptr);

    /**
     * Timed simulation of @p n instructions. @p classifier may be null
     * (SMARTS mode: every LLC miss is real).
     */
    RegionStats simulate(workload::TraceSource &trace, InstCount n,
                         LlcClassifier *classifier);

    TournamentPredictor &branchPredictor() { return bpred_; }
    cache::StridePrefetcher &prefetcher() { return prefetcher_; }

  private:
    /** Handle prefetch candidates for a demand access at the LLC. */
    void runPrefetcher(Addr pc, Addr line, bool miss, RegionStats &stats);

    cache::CacheHierarchy &hier_;
    DetailedSimConfig config_;
    OooCoreModel core_;
    TournamentPredictor bpred_;
    cache::MshrFile l1d_mshr_;
    cache::MshrFile llc_mshr_;
    cache::StridePrefetcher prefetcher_;
};

} // namespace delorean::cpu

#endif // DELOREAN_CPU_DETAILED_SIM_HH
