#include "cpu/ooo_core.hh"

#include <algorithm>

#include "base/logging.hh"

namespace delorean::cpu
{

OooCoreModel::OooCoreModel(const OooParams &params)
    : params_(params),
      rob_commit_(params.rob, 0.0),
      lq_complete_(params.lq, 0.0),
      sq_complete_(params.sq, 0.0)
{
    fatal_if(params.rob == 0 || params.lq == 0 || params.sq == 0 ||
             params.width == 0,
             "OooParams: zero-sized structure");
    fatal_if(params.eff_ilp <= 0.0, "OooParams: eff_ilp must be > 0");
}

void
OooCoreModel::reset()
{
    std::fill(rob_commit_.begin(), rob_commit_.end(), 0.0);
    std::fill(lq_complete_.begin(), lq_complete_.end(), 0.0);
    std::fill(sq_complete_.begin(), sq_complete_.end(), 0.0);
    dispatch_time_ = 0.0;
    frontend_ready_ = 0.0;
    last_commit_ = 0.0;
    last_load_complete_ = 0.0;
    count_ = 0;
    loads_ = 0;
    stores_ = 0;
}

double
OooCoreModel::now() const
{
    const double rate =
        std::min(double(params_.width), params_.eff_ilp);
    return std::max(dispatch_time_ + 1.0 / rate, frontend_ready_);
}

double
OooCoreModel::dispatch(double exec_latency, bool is_load, bool is_store,
                       bool dep_on_last_load)
{
    const double rate =
        std::min(double(params_.width), params_.eff_ilp);

    double d = dispatch_time_ + 1.0 / rate;
    d = std::max(d, frontend_ready_);

    // Structural stalls: the instruction entering the ROB/LQ/SQ must wait
    // for the entry freed by the instruction `size` slots earlier.
    d = std::max(d, rob_commit_[count_ % params_.rob]);
    if (is_load)
        d = std::max(d, lq_complete_[loads_ % params_.lq]);
    if (is_store)
        d = std::max(d, sq_complete_[stores_ % params_.sq]);

    double start = d;
    if (dep_on_last_load)
        start = std::max(start, last_load_complete_);

    const double complete = start + exec_latency;

    // In-order commit: an instruction commits no earlier than its
    // predecessor.
    const double commit = std::max(complete, last_commit_);
    rob_commit_[count_ % params_.rob] = commit;
    if (is_load) {
        lq_complete_[loads_ % params_.lq] = complete;
        last_load_complete_ = complete;
        ++loads_;
    }
    if (is_store) {
        sq_complete_[stores_ % params_.sq] = complete;
        ++stores_;
    }

    dispatch_time_ = d;
    last_commit_ = commit;
    ++count_;
    return complete;
}

void
OooCoreModel::redirect(double resolve_time)
{
    frontend_ready_ = std::max(
        frontend_ready_, resolve_time + params_.redirect_penalty);
}

void
OooCoreModel::frontendStall(double cycles)
{
    frontend_ready_ = std::max(frontend_ready_, now() + cycles);
}

} // namespace delorean::cpu
