/**
 * @file
 * StatStack: estimating stack distances from reuse distances.
 *
 * Implements the statistical cache model of Eklov & Hagersten (ISPASS
 * 2010, paper reference [11]). Given a (sparse, sampled) forward reuse
 * distance distribution, the expected stack distance of a window of d
 * memory references is
 *
 *      E[SD(d)] = sum_{i=0}^{d-1} P(rd > i)
 *
 * i.e. each of the d references in the window is the *last* access to its
 * cacheline within the window with probability P(rd > remaining), and the
 * stack distance is the expected number of such "last" accesses. With a
 * log-bucketed histogram, the survival function P(rd > x) is piecewise
 * linear, so E[SD(d)] is piecewise quadratic and can be evaluated exactly
 * per bucket — this class precomputes the per-edge prefix integrals once
 * and answers queries in O(log buckets).
 *
 * A fully-associative LRU cache of C lines misses exactly when the stack
 * distance exceeds C (Mattson et al.), which is DSW's capacity-miss rule.
 */

#ifndef DELOREAN_STATMODEL_STATSTACK_HH
#define DELOREAN_STATMODEL_STATSTACK_HH

#include <vector>

#include "statmodel/reuse_histogram.hh"

namespace delorean::statmodel
{

/**
 * Immutable stack-distance estimator built from a reuse histogram.
 */
class StatStack
{
  public:
    /**
     * @param reuse sampled forward reuse-distance distribution (the
     *              "vicinity" distribution in DeLorean; the global or
     *              per-PC distribution in RSW)
     */
    explicit StatStack(const ReuseHistogram &reuse);

    /** Expected stack distance for a reuse distance of @p rd. */
    double stackDistance(std::uint64_t rd) const;

    /**
     * Would an access with backward reuse distance @p rd miss in a
     * fully-associative LRU cache of @p cache_lines lines?
     */
    bool
    isMiss(std::uint64_t rd, std::uint64_t cache_lines) const
    {
        return stackDistance(rd) > double(cache_lines);
    }

    /**
     * Smallest reuse distance whose expected stack distance exceeds
     * @p cache_lines (the miss threshold). Accesses with rd above this
     * are predicted misses. Returns UINT64_MAX when even the longest
     * observed distances fit in the cache.
     */
    std::uint64_t missThreshold(std::uint64_t cache_lines) const;

    /**
     * Miss ratio of a fully-associative LRU cache with @p cache_lines
     * lines, over the sampled access population: the probability mass of
     * reuse distances above the miss threshold.
     */
    double missRatio(std::uint64_t cache_lines) const;

    /** True when the input histogram had no samples. */
    bool empty() const { return total_ <= 0.0; }

    /** Total sample weight behind the model. */
    double totalWeight() const { return total_; }

  private:
    /** Piecewise-linear survival segment starting at edge x. */
    struct Segment
    {
        std::uint64_t x;      //!< segment start (inclusive)
        double surv;          //!< P(rd > t) just above x
        double slope;         //!< d surv / dt within the segment (<= 0)
        double integral;      //!< sum_{i=0}^{x-1} P(rd > i)
    };

    /** Locate the segment containing @p rd. */
    const Segment &segmentFor(std::uint64_t rd) const;

    std::vector<Segment> segments_;
    double total_ = 0.0;
};

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_STATSTACK_HH
