#include "statmodel/statstack.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"

namespace delorean::statmodel
{

StatStack::StatStack(const ReuseHistogram &reuse)
{
    const LogHistogram &events = reuse.events();
    const LogHistogram &censored = reuse.censoredHist();
    total_ = events.totalWeight() + censored.totalWeight();
    if (total_ <= 0.0)
        return;

    segments_.reserve(2 * events.nonEmptyBuckets() + 2);

    // Kaplan-Meier walk over event and censoring buckets in value
    // order: events pull the survival down by a factor (1 - w/n) of the
    // population n still at risk; censored mass leaves the risk set
    // without moving the survival. Survival decreases linearly across
    // an event bucket's width. The walk cursors run directly over the
    // histograms' bit-packed buckets (LogHistogram::NonEmptyCursor) —
    // the solver inner loop touches two contiguous arrays and
    // materializes nothing.
    double at_risk = total_;
    double surv = 1.0;
    double integral = 0.0; // sum_{i<x} P(rd > i)
    std::uint64_t x = 0;
    LogHistogram::NonEmptyCursor ev(events);
    LogHistogram::NonEmptyCursor ce(censored);

    while (ev.valid() || ce.valid()) {
        const bool take_event =
            !ce.valid() ||
            (ev.valid() && ev.bucket().mid() <= ce.bucket().mid());
        if (!take_event) {
            at_risk -= ce.bucket().weight;
            ce.advance();
            continue;
        }

        const auto &b = ev.bucket();
        if (b.low > x) {
            // Gap with no event mass: survival is flat.
            segments_.push_back({x, surv, 0.0, integral});
            integral += surv * double(b.low - x);
            x = b.low;
        }
        const double drop =
            at_risk > 0.0 ? surv * (b.weight / at_risk) : 0.0;
        const double next = std::max(0.0, surv - drop);
        const double width = double(b.high - b.low);
        segments_.push_back({x, surv, (next - surv) / width, integral});
        integral += 0.5 * (surv + next) * width;
        surv = next;
        at_risk -= b.weight;
        // The topmost bucket's exclusive bound 2^64 wraps to 0
        // (LogHistogram::Bucket); saturate so the tail segment keeps
        // the table ascending for segmentFor's binary search.
        x = b.high > b.low ? b.high : ~std::uint64_t(0);
        ev.advance();
    }

    // Tail: with heavy censoring the Kaplan-Meier survival stays
    // strictly positive, so stack distance keeps growing linearly
    // beyond the last observation — the correct behaviour for
    // streaming working sets.
    segments_.push_back({x, surv, 0.0, integral});
}

const StatStack::Segment &
StatStack::segmentFor(std::uint64_t rd) const
{
    panic_if(segments_.empty(), "StatStack query on empty model");
    // Last segment whose start is <= rd.
    const auto it = std::upper_bound(
        segments_.begin(), segments_.end(), rd,
        [](std::uint64_t v, const Segment &s) { return v < s.x; });
    return it == segments_.begin() ? segments_.front() : *(it - 1);
}

double
StatStack::stackDistance(std::uint64_t rd) const
{
    if (empty())
        return 0.0;
    const Segment &seg = segmentFor(rd);
    const double dt = double(rd - seg.x);
    double sd = seg.integral + seg.surv * dt + 0.5 * seg.slope * dt * dt;
    return std::max(sd, 0.0);
}

std::uint64_t
StatStack::missThreshold(std::uint64_t cache_lines) const
{
    if (empty())
        return std::numeric_limits<std::uint64_t>::max();

    const Segment &tail = segments_.back();
    const std::uint64_t max_x = tail.x;
    if (stackDistance(max_x) <= double(cache_lines)) {
        // The observed range never overflows the cache; with residual
        // survival the linear tail eventually does.
        if (tail.surv <= 1e-12)
            return std::numeric_limits<std::uint64_t>::max();
        const double need = double(cache_lines) - tail.integral;
        const double extra = need / tail.surv;
        const double thr = double(max_x) + std::max(0.0, extra);
        if (thr >= double(std::numeric_limits<std::uint64_t>::max()))
            return std::numeric_limits<std::uint64_t>::max();
        return std::uint64_t(thr) + 1;
    }

    std::uint64_t lo = 0, hi = max_x;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (stackDistance(mid) > double(cache_lines))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

double
StatStack::missRatio(std::uint64_t cache_lines) const
{
    if (empty())
        return 0.0;
    const std::uint64_t thr = missThreshold(cache_lines);
    if (thr == std::numeric_limits<std::uint64_t>::max())
        return 0.0;
    // P(rd >= thr): Kaplan-Meier survival just below the threshold.
    const Segment &seg = segmentFor(thr);
    const double dt = double(thr - seg.x);
    return std::clamp(seg.surv + seg.slope * dt, 0.0, 1.0);
}

} // namespace delorean::statmodel
