/**
 * @file
 * Exact stack-distance profiling (Mattson et al., paper reference [20]).
 *
 * Used as the ground-truth reference against which StatStack's estimates
 * are validated in the test suite, and as the classic (expensive)
 * baseline the paper's §2.2 contrasts with reuse-distance profiling.
 * Implementation: the standard Bennett & Kruskal style algorithm with a
 * Fenwick tree over access positions — O(log n) per access.
 */

#ifndef DELOREAN_STATMODEL_STACK_DIST_EXACT_HH
#define DELOREAN_STATMODEL_STACK_DIST_EXACT_HH

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "base/histogram.hh"
#include "base/types.hh"

namespace delorean::statmodel
{

/**
 * Exact stack distance per access over a bounded-length trace.
 */
class ExactStackProfiler
{
  public:
    /** Sentinel returned for the first access to a line. */
    static constexpr std::uint64_t cold =
        std::numeric_limits<std::uint64_t>::max();

    /** @param max_accesses upper bound on access() calls. */
    explicit ExactStackProfiler(std::size_t max_accesses);

    /**
     * Record an access to @p line.
     * @return the stack distance (number of distinct lines accessed
     *         since the previous access to @p line), or `cold`.
     */
    std::uint64_t access(Addr line);

    /** Histogram of all non-cold stack distances observed. */
    const LogHistogram &histogram() const { return hist_; }

    Counter accesses() const { return pos_; }
    Counter coldAccesses() const { return cold_; }

  private:
    void fenwickAdd(std::size_t i, int delta);
    std::int64_t fenwickSum(std::size_t i) const; //!< prefix sum [1, i]

    std::size_t capacity_;
    std::vector<std::int32_t> tree_; //!< 1-based Fenwick tree
    std::unordered_map<Addr, std::size_t> last_; //!< line -> position
    std::size_t pos_ = 0;
    Counter cold_ = 0;
    LogHistogram hist_;
};

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_STACK_DIST_EXACT_HH
