#include "statmodel/reuse_histogram.hh"

#include <algorithm>

namespace delorean::statmodel
{

double
ReuseHistogram::survivalKM(std::uint64_t t) const
{
    const double total =
        events_.totalWeight() + censored_.totalWeight();
    if (total <= 0.0)
        return 0.0;

    double survival = 1.0;
    double at_risk = total;

    // Merge-walk both histograms in increasing value order, straight
    // over their bit-packed buckets (LogHistogram::NonEmptyCursor) —
    // no intermediate bucket vectors. Buckets are treated at their
    // midpoint; censored mass leaves the risk set *after* events at
    // the same point (the standard convention).
    LogHistogram::NonEmptyCursor ev(events_);
    LogHistogram::NonEmptyCursor ce(censored_);
    while (ev.valid() || ce.valid()) {
        const bool take_event =
            !ce.valid() ||
            (ev.valid() && ev.bucket().mid() <= ce.bucket().mid());
        const std::uint64_t value =
            take_event ? ev.bucket().mid() : ce.bucket().mid();
        if (value > t)
            break;
        if (at_risk <= 0.0)
            break;
        if (take_event) {
            survival *=
                std::max(0.0, 1.0 - ev.bucket().weight / at_risk);
            at_risk -= ev.bucket().weight;
            ev.advance();
        } else {
            at_risk -= ce.bucket().weight;
            ce.advance();
        }
    }
    return std::clamp(survival, 0.0, 1.0);
}

} // namespace delorean::statmodel
