#include "statmodel/reuse_histogram.hh"

#include <algorithm>

namespace delorean::statmodel
{

double
ReuseHistogram::survivalKM(std::uint64_t t) const
{
    const double total =
        events_.totalWeight() + censored_.totalWeight();
    if (total <= 0.0)
        return 0.0;

    const auto ev = events_.buckets();
    const auto ce = censored_.buckets();

    double survival = 1.0;
    double at_risk = total;
    std::size_t i = 0, j = 0;

    // Merge-walk both bucket lists in increasing value order. Buckets
    // are treated at their midpoint; censored mass leaves the risk set
    // *after* events at the same point (the standard convention).
    while (i < ev.size() || j < ce.size()) {
        const bool take_event =
            j >= ce.size() ||
            (i < ev.size() && ev[i].mid() <= ce[j].mid());
        const std::uint64_t value =
            take_event ? ev[i].mid() : ce[j].mid();
        if (value > t)
            break;
        if (at_risk <= 0.0)
            break;
        if (take_event) {
            survival *= std::max(0.0, 1.0 - ev[i].weight / at_risk);
            at_risk -= ev[i].weight;
            ++i;
        } else {
            at_risk -= ce[j].weight;
            ++j;
        }
    }
    return std::clamp(survival, 0.0, 1.0);
}

} // namespace delorean::statmodel
