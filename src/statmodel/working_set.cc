#include "statmodel/working_set.hh"

#include <sstream>

#include "base/addr.hh"
#include "base/units.hh"

namespace delorean::statmodel
{

std::vector<std::uint64_t>
WorkingSetCurve::knees(double drop_ratio, double min_mpki) const
{
    std::vector<std::uint64_t> out;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const double prev = points_[i - 1].mpki;
        const double cur = points_[i].mpki;
        if (prev >= min_mpki && cur <= prev * (1.0 - drop_ratio))
            out.push_back(points_[i].cache_bytes);
    }
    return out;
}

std::string
WorkingSetCurve::toString() const
{
    std::ostringstream os;
    os << "size_mib mpki\n";
    for (const auto &p : points_) {
        os << double(p.cache_bytes) / double(MiB) << " " << p.mpki
           << "\n";
    }
    return os.str();
}

WorkingSetCurve
modelWorkingSet(const StatStack &stack, double refs_per_kilo_inst,
                const std::vector<std::uint64_t> &sizes)
{
    WorkingSetCurve curve;
    for (const std::uint64_t bytes : sizes) {
        const double miss_ratio = stack.missRatio(bytes / line_size);
        curve.addPoint(bytes, miss_ratio * refs_per_kilo_inst);
    }
    return curve;
}

std::vector<std::uint64_t>
paperLlcSizes()
{
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t s = 1 * MiB; s <= 512 * MiB; s *= 2)
        sizes.push_back(s);
    return sizes;
}

} // namespace delorean::statmodel
