/**
 * @file
 * Limited-associativity (dominant stride) conflict-miss model.
 *
 * The paper (§3.1.2, "Conflict Misses") observes that load PCs with a
 * dominant large stride use only a fraction of the cache sets: a 512-byte
 * stride touches one eighth of the sets with 64-byte lines. DSW adopts
 * CoolSim's limited-associativity model: when a PC's dominant stride
 * covers k lines, its effective cache is (sets / k) x assoc, so an access
 * whose stack distance fits the full cache can still conflict-miss. This
 * class learns per-PC dominant strides from the accesses visible during
 * detailed warming and answers the Figure 3 "conflict?" question.
 */

#ifndef DELOREAN_STATMODEL_ASSOC_MODEL_HH
#define DELOREAN_STATMODEL_ASSOC_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "base/types.hh"

namespace delorean::statmodel
{

/** Per-PC dominant-stride detector + conflict-miss rule. */
class AssocModel
{
  public:
    /**
     * @param sets  number of sets of the modeled cache
     * @param assoc its associativity
     * @param dominance fraction of observed deltas that must agree for a
     *                  stride to count as dominant
     */
    AssocModel(std::uint64_t sets, unsigned assoc,
               double dominance = 0.6);

    /** Train on one visible access (cacheline granularity). */
    void observe(Addr pc, Addr line);

    /**
     * Dominant stride of @p pc in cachelines, rounded down to a power of
     * two and clamped to the set count; 1 when no dominant stride.
     */
    std::uint64_t strideLines(Addr pc) const;

    /**
     * Figure 3 conflict rule: true when the access (stack distance
     * @p stack_distance, from the statistical model) overflows the
     * effective sets x assoc reachable with the PC's dominant stride,
     * while still fitting the full cache (otherwise it is a capacity
     * miss, not a conflict miss).
     */
    bool isConflict(Addr pc, double stack_distance) const;

    std::size_t trackedPcs() const { return table_.size(); }

    void clear() { table_.clear(); }

  private:
    struct PcEntry
    {
        Addr last_line = invalid_addr;
        std::int64_t stride = 0;     //!< current candidate (lines)
        std::uint64_t agree = 0;     //!< deltas matching the candidate
        std::uint64_t total = 0;     //!< deltas observed
    };

    std::uint64_t sets_;
    unsigned assoc_;
    double dominance_;
    std::unordered_map<Addr, PcEntry> table_;
};

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_ASSOC_MODEL_HH
