/**
 * @file
 * Reuse distance distributions, global and per load PC.
 *
 * Reuse distance = number of memory references between two references to
 * the same cacheline (paper §2.2). Distances here are measured in memory
 * references, matching StatStack's definition.
 *
 * Samples may be *right-censored*: a watchpoint whose reuse did not occur
 * before the end of the profiled interval only yields a lower bound on
 * its distance. Censored observations are first-class citizens here —
 * survival queries use the Kaplan-Meier estimator, which is what makes
 * the statistical models behave correctly for both short-reuse and
 * streaming workloads. (Naive treatments either deflate the long tail —
 * underpredicting misses for streaming codes — or inflate it,
 * reproducing CoolSim's overestimation pathologies everywhere instead of
 * only where censoring is genuinely ambiguous.)
 */

#ifndef DELOREAN_STATMODEL_REUSE_HISTOGRAM_HH
#define DELOREAN_STATMODEL_REUSE_HISTOGRAM_HH

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "base/histogram.hh"
#include "base/types.hh"

namespace delorean::statmodel
{

/** A reuse-distance distribution with right-censored observations. */
class ReuseHistogram
{
  public:
    explicit ReuseHistogram(unsigned sub_buckets = 8)
        : events_(sub_buckets), censored_(sub_buckets)
    {}

    /**
     * Reconstruct from previously snapshotted component histograms
     * (LogHistogram::snapshot/fromSnapshot) — the live-point reader's
     * path back to an operator==-equal distribution.
     */
    ReuseHistogram(LogHistogram events, LogHistogram censored)
        : events_(std::move(events)), censored_(std::move(censored))
    {}

    /** Record an observed reuse of distance @p rd (weight @p w). */
    void
    addReuse(std::uint64_t rd, double w = 1.0)
    {
        events_.add(rd, w);
    }

    /**
     * Record a censored observation: no reuse within @p lower_bound
     * references (the watchpoint was still armed at the end of the
     * interval).
     */
    void
    addCensored(std::uint64_t lower_bound, double w = 1.0)
    {
        censored_.add(lower_bound, w);
    }

    /** Observed (uncensored) reuse distances. */
    const LogHistogram &events() const { return events_; }

    /** Censoring points. */
    const LogHistogram &censoredHist() const { return censored_; }

    /** Total collected samples (events + censored) — the Fig. 6 count. */
    Counter
    samples() const
    {
        return Counter(events_.totalWeight() +
                       censored_.totalWeight());
    }

    Counter censored() const
    {
        return Counter(censored_.totalWeight());
    }

    bool empty() const { return samples() == 0; }

    /**
     * Kaplan-Meier estimate of P(rd > t): walks event and censoring
     * buckets in value order, multiplying survival by (1 - d/n) for
     * each event mass d over the population n still at risk. Censored
     * samples leave the risk set without forcing the survival down —
     * the key difference from treating them as observed values.
     */
    double survivalKM(std::uint64_t t) const;

    void
    merge(const ReuseHistogram &other)
    {
        events_.merge(other.events_);
        censored_.merge(other.censored_);
    }

    void
    clear()
    {
        events_.clear();
        censored_.clear();
    }

    /** Exact equality of both component histograms. */
    bool operator==(const ReuseHistogram &other) const = default;

  private:
    LogHistogram events_;
    LogHistogram censored_;
};

/**
 * Per-PC reuse distributions plus the pooled global distribution —
 * the model input RSW (CoolSim) uses (paper §2.3: "reuse distance
 * distributions per load PC").
 */
class PcReuseProfile
{
  public:
    /** Record a reuse attributed to the reusing access's @p pc. */
    void
    addReuse(Addr pc, std::uint64_t rd)
    {
        global_.addReuse(rd);
        perPc(pc).addReuse(rd);
    }

    /** Record a censored watchpoint attributed to @p pc. */
    void
    addCensored(Addr pc, std::uint64_t lower_bound)
    {
        global_.addCensored(lower_bound);
        perPc(pc).addCensored(lower_bound);
    }

    const ReuseHistogram &global() const { return global_; }

    /** @return the PC's histogram, or nullptr if no samples for it. */
    const ReuseHistogram *
    forPc(Addr pc) const
    {
        const auto it = per_pc_.find(pc);
        return it == per_pc_.end() ? nullptr : &it->second;
    }

    std::size_t distinctPcs() const { return per_pc_.size(); }
    Counter samples() const { return global_.samples(); }

    void
    clear()
    {
        global_.clear();
        per_pc_.clear();
    }

  private:
    ReuseHistogram &
    perPc(Addr pc)
    {
        return per_pc_.try_emplace(pc).first->second;
    }

    ReuseHistogram global_;
    std::unordered_map<Addr, ReuseHistogram> per_pc_;
};

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_REUSE_HISTOGRAM_HH
