#include "statmodel/statcache.hh"

#include <cmath>

#include "base/logging.hh"

namespace delorean::statmodel
{

StatCache::StatCache(const ReuseHistogram &reuse)
    : buckets_(reuse.events().buckets()),
      total_(reuse.events().totalWeight() +
             reuse.censoredHist().totalWeight())
{
    // Censored observations are lower bounds; under random replacement
    // the miss probability is already near one at such distances, so
    // fold them in at their censoring points.
    for (const auto &b : reuse.censoredHist().buckets())
        buckets_.push_back(b);
}

double
StatCache::missProbability(std::uint64_t rd, double m,
                           std::uint64_t cache_lines)
{
    panic_if(cache_lines == 0, "StatCache with zero-line cache");
    // (1 - 1/L)^(m*d) computed in log space to survive huge d.
    const double log_survive =
        double(rd) * m * std::log1p(-1.0 / double(cache_lines));
    return 1.0 - std::exp(log_survive);
}

double
StatCache::missRatio(std::uint64_t cache_lines, unsigned iterations,
                     double tolerance) const
{
    if (empty())
        return 0.0;

    // Start from the pessimal fixed point side (m = 1) and iterate; the
    // map is monotone, so this converges to the largest fixed point,
    // which is the physically meaningful steady state.
    double m = 1.0;
    for (unsigned i = 0; i < iterations; ++i) {
        double sum = 0.0;
        for (const auto &b : buckets_)
            sum += b.weight * missProbability(b.mid(), m, cache_lines);
        const double next = sum / total_;
        const double delta = std::abs(next - m);
        m = next;
        if (delta < tolerance)
            break;
    }
    return m;
}

} // namespace delorean::statmodel
