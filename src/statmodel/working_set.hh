/**
 * @file
 * Working-set (miss-rate vs cache-size) curves — paper §6.4.1.
 *
 * A WorkingSetCurve is the product of either measurement (SMARTS
 * reference) or the statistical model (DeLorean); knee detection mirrors
 * the paper's discussion of lbm's knees at 8 MiB and 512 MiB.
 */

#ifndef DELOREAN_STATMODEL_WORKING_SET_HH
#define DELOREAN_STATMODEL_WORKING_SET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "statmodel/statstack.hh"

namespace delorean::statmodel
{

/** One (cache size, MPKI) point. */
struct WorkingSetPoint
{
    std::uint64_t cache_bytes = 0;
    double mpki = 0.0;
};

/** An MPKI-vs-size curve with knee detection. */
class WorkingSetCurve
{
  public:
    void
    addPoint(std::uint64_t cache_bytes, double mpki)
    {
        points_.push_back({cache_bytes, mpki});
    }

    const std::vector<WorkingSetPoint> &points() const { return points_; }

    /**
     * Cache sizes at which MPKI falls by at least @p drop_ratio relative
     * to the previous (smaller) size — the "knees" of the curve. Only
     * drops from a meaningful level (>= @p min_mpki) count.
     */
    std::vector<std::uint64_t> knees(double drop_ratio = 0.5,
                                     double min_mpki = 0.5) const;

    /** Two-column text table (size MiB, MPKI). */
    std::string toString() const;

  private:
    std::vector<WorkingSetPoint> points_;
};

/**
 * Model-driven curve: MPKI(C) from a StatStack model plus the memory
 * reference rate.
 *
 * @param stack      reuse-distance model of the workload
 * @param refs_per_kilo_inst memory references per 1000 instructions
 * @param sizes      cache sizes (bytes) to evaluate
 */
WorkingSetCurve modelWorkingSet(const StatStack &stack,
                                double refs_per_kilo_inst,
                                const std::vector<std::uint64_t> &sizes);

/** The paper's LLC sweep: 1, 2, 4, ..., 512 MiB. */
std::vector<std::uint64_t> paperLlcSizes();

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_WORKING_SET_HH
