/**
 * @file
 * StatCache: statistical modeling of random-replacement caches.
 *
 * Implements Berg & Hagersten's probabilistic model (ISPASS 2004, paper
 * reference [5]): in a cache of L lines with random replacement, an
 * access whose forward reuse distance is d survives each intervening miss
 * with probability (1 - 1/L), so
 *
 *      P(miss | d) = 1 - (1 - 1/L)^(m * d)
 *
 * where m is the (unknown) overall miss ratio. The model solves the fixed
 * point  m = E_d[P(miss | d)]  over the sampled reuse-distance
 * distribution. This covers the paper's §4.1 claim that statistical
 * warming generalizes beyond LRU.
 */

#ifndef DELOREAN_STATMODEL_STATCACHE_HH
#define DELOREAN_STATMODEL_STATCACHE_HH

#include "statmodel/reuse_histogram.hh"

namespace delorean::statmodel
{

/** Random-replacement miss-ratio solver. */
class StatCache
{
  public:
    explicit StatCache(const ReuseHistogram &reuse);

    /**
     * Solve for the steady-state miss ratio of a random-replacement
     * cache with @p cache_lines lines.
     *
     * @param cache_lines  cache capacity in lines
     * @param iterations   maximum fixed-point iterations
     * @param tolerance    convergence threshold on |m' - m|
     */
    double missRatio(std::uint64_t cache_lines, unsigned iterations = 200,
                     double tolerance = 1e-10) const;

    /**
     * Miss probability of a single access with reuse distance @p rd under
     * overall miss ratio @p m.
     */
    static double missProbability(std::uint64_t rd, double m,
                                  std::uint64_t cache_lines);

    bool empty() const { return total_ <= 0.0; }

  private:
    std::vector<LogHistogram::Bucket> buckets_;
    double total_ = 0.0;
};

} // namespace delorean::statmodel

#endif // DELOREAN_STATMODEL_STATCACHE_HH
