#include "statmodel/stack_dist_exact.hh"

#include "base/logging.hh"

namespace delorean::statmodel
{

ExactStackProfiler::ExactStackProfiler(std::size_t max_accesses)
    : capacity_(max_accesses), tree_(max_accesses + 1, 0)
{
    fatal_if(max_accesses == 0,
             "ExactStackProfiler needs a positive capacity");
}

void
ExactStackProfiler::fenwickAdd(std::size_t i, int delta)
{
    for (; i < tree_.size(); i += i & (~i + 1))
        tree_[i] += delta;
}

std::int64_t
ExactStackProfiler::fenwickSum(std::size_t i) const
{
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1))
        s += tree_[i];
    return s;
}

std::uint64_t
ExactStackProfiler::access(Addr line)
{
    panic_if(pos_ >= capacity_,
             "ExactStackProfiler capacity %zu exceeded", capacity_);
    ++pos_; // 1-based position of this access

    std::uint64_t sd = cold;
    const auto it = last_.find(line);
    if (it != last_.end()) {
        const std::size_t prev = it->second;
        // Number of lines whose most recent access lies strictly between
        // prev and now = distinct lines touched since prev.
        sd = std::uint64_t(fenwickSum(pos_ - 1) - fenwickSum(prev));
        fenwickAdd(prev, -1);
        hist_.add(sd);
    } else {
        ++cold_;
    }

    fenwickAdd(pos_, +1);
    last_[line] = pos_;
    return sd;
}

} // namespace delorean::statmodel
