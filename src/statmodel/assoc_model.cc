#include "statmodel/assoc_model.hh"

#include <cstdlib>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace delorean::statmodel
{

AssocModel::AssocModel(std::uint64_t sets, unsigned assoc,
                       double dominance)
    : sets_(sets), assoc_(assoc), dominance_(dominance)
{
    fatal_if(sets == 0 || assoc == 0, "AssocModel: degenerate geometry");
    fatal_if(dominance <= 0.0 || dominance > 1.0,
             "AssocModel: dominance must be in (0, 1]");
}

void
AssocModel::observe(Addr pc, Addr line)
{
    PcEntry &e = table_.try_emplace(pc).first->second;
    if (e.last_line == invalid_addr) {
        e.last_line = line;
        return;
    }
    const std::int64_t delta =
        std::int64_t(line) - std::int64_t(e.last_line);
    e.last_line = line;
    ++e.total;
    if (delta == e.stride) {
        ++e.agree;
    } else if (e.agree == 0 || e.total == 1) {
        // Adopt a new candidate stride when the old one has no support.
        e.stride = delta;
        e.agree = 1;
    }
}

std::uint64_t
AssocModel::strideLines(Addr pc) const
{
    const auto it = table_.find(pc);
    if (it == table_.end())
        return 1;
    const PcEntry &e = it->second;
    if (e.total < 4 || double(e.agree) < dominance_ * double(e.total))
        return 1;
    const std::uint64_t mag = std::uint64_t(std::llabs(e.stride));
    if (mag <= 1)
        return 1;
    // Round to the power of two actually limiting set usage, clamped to
    // the set count (a stride larger than the cache's sets pins the PC
    // to a single set).
    const std::uint64_t pow2 = std::uint64_t(1) << floorLog2(mag);
    return pow2 < sets_ ? pow2 : sets_;
}

bool
AssocModel::isConflict(Addr pc, double stack_distance) const
{
    const std::uint64_t k = strideLines(pc);
    if (k <= 1)
        return false;
    const std::uint64_t eff_sets = sets_ / k ? sets_ / k : 1;
    const double per_set = stack_distance / double(eff_sets);
    const bool fits_cache =
        stack_distance <= double(sets_) * double(assoc_);
    return fits_cache && per_set > double(assoc_);
}

} // namespace delorean::statmodel
