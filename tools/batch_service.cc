/**
 * @file
 * Long-running batch service: daemon entry point and socket client
 * (src/service/, docs/service.md).
 *
 *   batch_service serve    [--socket S] [--spool DIR] [--cache-dir D]
 *                          [--threads T] [--poll-ms M] [--daemon]
 *                          [--log FILE] [--quiet]
 *                          [--worker COORD_SOCK [--name N]]
 *                          (--socket, --worker, or both)
 *   batch_service coordinate --socket S [--cache-dir D]
 *                          [--lease-ms M] [--quota N]
 *                          [--max-ready N] [--daemon] [--log FILE]
 *                          [--quiet]
 *   batch_service submit   <manifest> --socket S [--priority P]
 *                          [--wait [--timeout-s T]]
 *   batch_service status   --socket S [--job ID]
 *   batch_service result   <manifest> --socket S [--timings]
 *   batch_service result-raw <key-hex> --socket S [--out FILE]
 *   batch_service stream   <trace.dlt> --socket S [--plan FILE]
 *                          [--chunks N]
 *   batch_service stats    --socket S
 *   batch_service shutdown --socket S
 *
 * `coordinate` runs the fleet coordinator (docs/service.md): same
 * client-facing protocol as `serve`, but cells execute on worker
 * daemons — `serve --worker COORD_SOCK` adds a pull loop that leases
 * work units from the coordinator alongside (or instead of) local
 * spool/socket duty. One binary plays every fleet role.
 *
 * `serve` runs the daemon: a manifest watcher over the spool directory
 * (drop `.plan` files, collect them from `done/`) plus a Unix-domain
 * socket speaking DLRNSRV1, draining one shared priority queue into
 * the persistent result cache. `--daemon` detaches (fork + setsid,
 * stdio to --log or /dev/null); without it the server runs in the
 * foreground, which is what CI and process supervisors want.
 *
 * `result` expands the manifest locally (the same BatchPlan expansion
 * `batch_run` uses, so content keys match by construction), fetches
 * every cell over the socket and prints the canonical TSV
 * (batch/report_text.hh) — byte-identical to `batch_run run` output
 * of the same plan iff the results are bit-identical, which the CI
 * service-smoke job checks with a plain `diff`.
 *
 * `submit --wait` polls the job until it completes and exits non-zero
 * if any cell failed, so shell pipelines can treat the service like a
 * blocking runner.
 *
 * `stream` feeds a recorded DLRNTRC1 trace to the service over the
 * TRACE-STREAM opcodes in --chunks pieces (cut by byte count, so cuts
 * land mid-record and mid-window — the wire format is chunking-
 * agnostic), printing the running estimate after every chunk and the
 * final cache key on close. `--plan FILE` supplies manifest directives
 * (config/schedule lines only, no workload); feed the key to
 * `result-raw`, or run `result` with a manifest naming the original
 * trace file — the streamed result is cached under the same content
 * key an offline run of that file produces.
 *
 * `stream --tail` hands the ingestion to the *server*: the daemon
 * polls the (possibly still growing) trace file itself — with the
 * manifest watcher's stability gate, so a recorder's half-written
 * tail is never fed — while this command just polls STATUS (running
 * CPI, MPKI and miss-ratio-curve points) until every declared record
 * is ingested, then closes. The trace path must be visible to the
 * daemon, so it is sent absolute.
 */

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "batch/report_text.hh"
#include "service/client.hh"
#include "service/coordinator.hh"
#include "service/service.hh"
#include "service/stream.hh"
#include "service/worker.hh"

namespace
{

using namespace delorean;
using namespace delorean::service;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: batch_service serve    [--socket S] [--spool DIR]\n"
        "                              [--cache-dir D] [--threads T]\n"
        "                              [--stream-threads T]\n"
        "                              [--poll-ms M] [--daemon]\n"
        "                              [--log FILE] [--quiet]\n"
        "                              [--worker COORD_SOCK"
        " [--name N]]\n"
        "                              (--socket, --worker, or both)\n"
        "       batch_service coordinate --socket S [--cache-dir D]\n"
        "                              [--lease-ms M] [--quota N]\n"
        "                              [--max-ready N] [--daemon]\n"
        "                              [--log FILE] [--quiet]\n"
        "       batch_service submit   <manifest> --socket S\n"
        "                              [--priority P] [--wait]\n"
        "                              [--timeout-s T]\n"
        "       batch_service status   --socket S [--job ID]\n"
        "       batch_service result   <manifest> --socket S"
        " [--timings]\n"
        "       batch_service result-raw <key-hex> --socket S"
        " [--out F]\n"
        "       batch_service stream   <trace.dlt> --socket S\n"
        "                              [--plan FILE] [--chunks N]\n"
        "                              [--tail]\n"
        "       batch_service stats    --socket S\n"
        "       batch_service shutdown --socket S\n");
    std::exit(1);
}

struct CliOptions
{
    std::string positional; //!< manifest path or key hex
    ServiceConfig service;
    unsigned priority = protocol::default_submit_priority;
    std::uint64_t job = 0;
    bool wait = false;
    unsigned timeout_s = 600;
    bool timings = false;
    bool daemonize = false;
    std::string log_file;
    std::string out_file;
    std::string worker_socket; //!< serve: pull from this coordinator
    std::string worker_name;   //!< serve --worker: reported name
    unsigned lease_ms = 10000;
    unsigned quota = 64;
    unsigned max_ready = 100000;
    std::string plan_file; //!< stream: manifest directives
    unsigned chunks = 3;   //!< stream: append pieces
    bool tail = false;     //!< stream: server-side tail of the file
};

unsigned
parseUnsigned(const std::string &text, const char *what)
{
    try {
        return batch::parseU32(text);
    } catch (const batch::BatchError &) {
        fatal("%s: expected a number, got '%s'", what, text.c_str());
    }
    return 0;
}

CliOptions
parseCli(int argc, char **argv, int first)
{
    CliOptions cli;
    cli.service.verbose = true;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            cli.service.socket_path = next();
        } else if (arg == "--spool") {
            cli.service.spool_dir = next();
        } else if (arg == "--cache-dir") {
            cli.service.cache_dir = next();
        } else if (arg == "--threads") {
            cli.service.threads = parseUnsigned(next(), "--threads");
        } else if (arg == "--poll-ms") {
            cli.service.poll_ms = parseUnsigned(next(), "--poll-ms");
        } else if (arg == "--worker") {
            cli.worker_socket = next();
        } else if (arg == "--name") {
            cli.worker_name = next();
        } else if (arg == "--lease-ms") {
            cli.lease_ms = parseUnsigned(next(), "--lease-ms");
        } else if (arg == "--quota") {
            cli.quota = parseUnsigned(next(), "--quota");
        } else if (arg == "--max-ready") {
            cli.max_ready = parseUnsigned(next(), "--max-ready");
        } else if (arg == "--stream-threads") {
            cli.service.stream_threads =
                parseUnsigned(next(), "--stream-threads");
        } else if (arg == "--plan") {
            cli.plan_file = next();
        } else if (arg == "--chunks") {
            cli.chunks = parseUnsigned(next(), "--chunks");
        } else if (arg == "--tail") {
            cli.tail = true;
        } else if (arg == "--priority") {
            cli.priority = parseUnsigned(next(), "--priority");
        } else if (arg == "--job") {
            cli.job = parseUnsigned(next(), "--job");
        } else if (arg == "--timeout-s") {
            cli.timeout_s = parseUnsigned(next(), "--timeout-s");
        } else if (arg == "--wait") {
            cli.wait = true;
        } else if (arg == "--timings") {
            cli.timings = true;
        } else if (arg == "--daemon") {
            cli.daemonize = true;
        } else if (arg == "--log") {
            cli.log_file = next();
        } else if (arg == "--out") {
            cli.out_file = next();
        } else if (arg == "--quiet") {
            cli.service.verbose = false;
        } else if (cli.positional.empty() && arg[0] != '-') {
            cli.positional = arg;
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    // A pure fleet worker (serve --worker, no --socket) needs no
    // listening address of its own; everything else does.
    fatal_if(cli.service.socket_path.empty() &&
                 cli.worker_socket.empty(),
             "--socket is required (the service address)");
    return cli;
}

/**
 * Classic daemonization: detach from the launching terminal so `serve
 * --daemon` survives the shell. stdout/stderr continue into --log (or
 * /dev/null) — the service's progress lines are its logbook.
 */
void
daemonize(const std::string &log_file)
{
    const ::pid_t pid = ::fork();
    fatal_if(pid < 0, "fork: %s", std::strerror(errno));
    if (pid > 0)
        std::exit(0); // launcher returns once the daemon is off
    fatal_if(::setsid() < 0, "setsid: %s", std::strerror(errno));

    const std::string sink =
        log_file.empty() ? "/dev/null" : log_file;
    const int log_fd =
        ::open(sink.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    fatal_if(log_fd < 0, "cannot open log '%s': %s", sink.c_str(),
             std::strerror(errno));
    const int null_fd = ::open("/dev/null", O_RDONLY);
    fatal_if(null_fd < 0, "cannot open /dev/null: %s",
             std::strerror(errno));
    ::dup2(null_fd, STDIN_FILENO);
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(null_fd);
    ::close(log_fd);
}

int
cmdServe(const CliOptions &cli)
{
    if (cli.daemonize)
        daemonize(cli.log_file);

    // --worker: lease units from a coordinator — alongside local duty
    // when --socket is also given (the pull loop shares the cache
    // directory, so cells computed for the fleet are cache hits for
    // local jobs and vice versa), or as a pure pull loop without one
    // (the normal per-machine fleet deployment; stopped by signal).
    std::unique_ptr<WorkerLoop> worker;
    if (!cli.worker_socket.empty()) {
        WorkerConfig config;
        config.coordinator = cli.worker_socket;
        config.cache_dir = cli.service.cache_dir;
        config.threads =
            cli.service.threads == 0 ? 1 : cli.service.threads;
        config.name = cli.worker_name;
        config.verbose = cli.service.verbose;
        worker = std::make_unique<WorkerLoop>(config);
        worker->start();
    }
    if (cli.service.socket_path.empty()) {
        while (true)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    BatchService service(cli.service);
    service.run();
    if (worker)
        worker->stop();
    return 0;
}

int
cmdCoordinate(const CliOptions &cli)
{
    if (cli.daemonize)
        daemonize(cli.log_file);
    CoordinatorConfig config;
    config.socket_path = cli.service.socket_path;
    config.cache_dir = cli.service.cache_dir;
    config.lease_ms = cli.lease_ms;
    config.submit_quota = cli.quota;
    config.max_ready_units = cli.max_ready;
    config.verbose = cli.service.verbose;
    Coordinator coordinator(config);
    coordinator.run();
    return 0;
}

std::string
readManifestFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open manifest '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

int
cmdSubmit(const CliOptions &cli)
{
    fatal_if(cli.positional.empty(), "submit: missing manifest path");
    const std::string text = readManifestFile(cli.positional);

    ServiceClient client(cli.service.socket_path);
    const auto info = client.submit(text, cli.priority);
    std::printf("job=%llu cells=%llu\n", (unsigned long long)info.job,
                (unsigned long long)info.cells);
    if (!cli.wait)
        return 0;

    // Capped exponential backoff (pollBackoffMs), not a fixed-period
    // spin: short jobs still return promptly, long jobs stop hammering
    // the daemon with STATUS frames every 100 ms.
    fatal_if(!client.waitForJob(info.job, double(cli.timeout_s)),
             "job %llu still running after %us",
             (unsigned long long)info.job, cli.timeout_s);
    // The typed snapshot drives the exit code; jobStatusLine renders
    // it back to the exact wire line, so the output stays diff-clean.
    const JobStatus status = client.jobStatus(info.job);
    std::fputs(jobStatusLine(status).c_str(), stdout);
    return status.failed == 0 ? 0 : 2;
}

int
cmdStatus(const CliOptions &cli)
{
    ServiceClient client(cli.service.socket_path);
    std::fputs(cli.job != 0
                   ? jobStatusLine(client.jobStatus(cli.job)).c_str()
                   : client.statusText().c_str(),
               stdout);
    return 0;
}

int
cmdResult(const CliOptions &cli)
{
    fatal_if(cli.positional.empty(), "result: missing manifest path");
    // Expanding locally reuses the exact key recipe batch_run uses, so
    // "the cell I ask for" and "the cell the service ran" can only be
    // the same content.
    const auto plan = batch::BatchPlan::fromManifest(cli.positional);
    ServiceClient client(cli.service.socket_path);

    batch::printResultHeaderTsv(stdout, cli.timings);
    for (const auto &cell : plan.cells()) {
        const auto result = client.result(cell.key);
        batch::printResultRowTsv(stdout, cell.workload,
                                 cell.config_name, cell.schedule_name,
                                 cell.method, result, cli.timings);
    }
    return 0;
}

int
cmdResultRaw(const CliOptions &cli)
{
    fatal_if(cli.positional.empty(), "result-raw: missing key hex");
    const auto key = batch::CacheKey::fromHex(cli.positional);
    ServiceClient client(cli.service.socket_path);
    const std::string bytes = client.resultBytes(key);

    if (cli.out_file.empty()) {
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
        return 0;
    }
    std::ofstream os(cli.out_file, std::ios::binary | std::ios::trunc);
    fatal_if(!os, "cannot write '%s'", cli.out_file.c_str());
    os.write(bytes.data(), std::streamsize(bytes.size()));
    fatal_if(!os.flush(), "short write to '%s'", cli.out_file.c_str());
    return 0;
}

/** Render one stream STATUS poll (shared by push and tail modes). */
void
printStreamStatus(const char *label, unsigned n,
                  const ServiceClient::StreamStatus &st)
{
    std::printf("%s=%u records=%llu windows_fed=%u windows_total=%u "
                "est_cpi=%.17g ci_error=%.17g mpki=%.17g",
                label, n, (unsigned long long)st.records,
                st.windows_fed, st.windows_total, st.est_cpi,
                st.ci_error, st.mpki);
    if (!st.mrc.empty())
        std::printf(" mrc=%s", formatMrcPoints(st.mrc).c_str());
    std::printf("\n");
}

/**
 * Server-side tail: the daemon follows the growing file itself; we
 * poll STATUS for the running estimate and close once every declared
 * record is ingested.
 */
int
streamTail(const CliOptions &cli, ServiceClient &client,
           const std::string &directives)
{
    // The daemon opens the path itself, from its own working
    // directory — send it absolute.
    const std::string path =
        std::filesystem::absolute(cli.positional).string();
    const std::uint64_t id =
        client.streamOpen("tail=" + path + "\n" + directives);
    std::printf("stream=%llu tail=%s\n", (unsigned long long)id,
                path.c_str());

    unsigned attempt = 0;
    for (unsigned poll = 1;; ++poll) {
        const auto st = client.streamStatus(id);
        printStreamStatus("poll", poll, st);
        if (st.complete)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            pollBackoffMs(attempt++, ServiceClient::poll_base_ms,
                          ServiceClient::poll_cap_ms, id)));
    }

    const auto info = client.streamClose(id);
    std::printf("key=%s windows=%u\n", info.key.hex().c_str(),
                info.windows);
    return 0;
}

int
cmdStream(const CliOptions &cli)
{
    fatal_if(cli.positional.empty(), "stream: missing trace path");
    if (cli.tail) {
        const std::string directives =
            cli.plan_file.empty() ? ""
                                  : readManifestFile(cli.plan_file);
        ServiceClient client(cli.service.socket_path);
        return streamTail(cli, client, directives);
    }
    std::ifstream is(cli.positional, std::ios::binary);
    fatal_if(!is, "cannot open trace '%s'", cli.positional.c_str());
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string bytes = buffer.str();
    fatal_if(bytes.empty(), "trace '%s' is empty",
             cli.positional.c_str());

    const std::string directives =
        cli.plan_file.empty() ? "" : readManifestFile(cli.plan_file);
    const unsigned chunks = cli.chunks == 0 ? 1 : cli.chunks;

    ServiceClient client(cli.service.socket_path);
    const std::uint64_t id = client.streamOpen(directives);
    std::printf("stream=%llu bytes=%zu chunks=%u\n",
                (unsigned long long)id, bytes.size(), chunks);

    // Chunk boundaries by plain byte arithmetic: they land mid-record
    // and mid-window, which the stream must (and does) absorb. Each
    // chunk still respects the 64 MiB frame cap via sub-appends.
    constexpr std::size_t max_append = 32u << 20;
    for (unsigned c = 0; c < chunks; ++c) {
        const std::size_t begin = bytes.size() * c / chunks;
        const std::size_t end = bytes.size() * (c + 1) / chunks;
        for (std::size_t at = begin; at < end; at += max_append)
            client.streamAppend(
                id, bytes.substr(at, std::min(max_append, end - at)));
        printStreamStatus("chunk", c + 1, client.streamStatus(id));
    }

    const auto info = client.streamClose(id);
    std::printf("key=%s windows=%u\n", info.key.hex().c_str(),
                info.windows);
    return 0;
}

int
cmdStats(const CliOptions &cli)
{
    ServiceClient client(cli.service.socket_path);
    std::fputs(client.statsText().c_str(), stdout);
    return 0;
}

int
cmdShutdown(const CliOptions &cli)
{
    ServiceClient client(cli.service.socket_path);
    client.shutdown();
    std::printf("shutdown requested\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    try {
        const auto cli = parseCli(argc, argv, 2);
        if (cmd == "serve")
            return cmdServe(cli);
        if (cmd == "coordinate")
            return cmdCoordinate(cli);
        if (cmd == "submit")
            return cmdSubmit(cli);
        if (cmd == "status")
            return cmdStatus(cli);
        if (cmd == "result")
            return cmdResult(cli);
        if (cmd == "result-raw")
            return cmdResultRaw(cli);
        if (cmd == "stream")
            return cmdStream(cli);
        if (cmd == "stats")
            return cmdStats(cli);
        if (cmd == "shutdown")
            return cmdShutdown(cli);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    usage();
}
