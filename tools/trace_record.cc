/**
 * @file
 * Trace recorder/inspector: serialize any workload to the on-disk
 * trace format and verify recordings against their source.
 *
 *   trace_record record <trace-spec> <count> <out.dlt>
 *   trace_record info   <file.dlt>
 *   trace_record verify <file.dlt> <trace-spec>
 *
 * `record` plays <count> instructions of <trace-spec> (any spec the
 * registry accepts, e.g. spec:bzip2 or champsim:foo.trace) into
 * <out.dlt>. `info` prints the header and a type histogram. `verify`
 * re-generates the source and compares every record — the CI replay
 * check.
 *
 * For a recording to drive a full sampled-simulation schedule, record
 * at least schedule.totalInstructions() = spacing x regions
 * instructions (e.g. 5,000,000 x 10 for the defaults); FileTrace fails
 * loudly if a schedule outruns the file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "workload/trace_io.hh"
#include "workload/trace_registry.hh"

namespace
{

using namespace delorean;
using namespace delorean::workload;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: trace_record record <trace-spec> <count> <out>\n"
                 "       trace_record info   <file>\n"
                 "       trace_record verify <file> <trace-spec>\n"
                 "%s\n",
                 traceSpecHelp());
    std::exit(1);
}

int
cmdRecord(const std::string &spec, const std::string &count_arg,
          const std::string &out)
{
    // Strict parse (batch/plan.hh): atoll quietly accepted "100x" as
    // 100 and overflowed large counts into negatives.
    InstCount count = 0;
    try {
        count = batch::parseCount(count_arg);
    } catch (const batch::BatchError &e) {
        fatal("record: instruction count: %s", e.what());
    }
    fatal_if(count == 0, "record: instruction count '%s' must be a "
             "positive integer", count_arg.c_str());

    auto source = makeTrace(spec);
    const InstCount written = recordTrace(*source, count, out);
    std::printf("recorded %llu instructions of '%s' to %s\n",
                (unsigned long long)written, source->name().c_str(),
                out.c_str());
    return 0;
}

int
cmdInfo(const std::string &file)
{
    TraceReader reader(file);
    std::printf("file         : %s\n", file.c_str());
    std::printf("workload     : %s\n", reader.name().c_str());
    std::printf("instructions : %llu\n",
                (unsigned long long)reader.instCount());

    std::uint64_t by_type[4] = {0, 0, 0, 0};
    while (reader.position() < reader.instCount())
        ++by_type[std::size_t(reader.next().type)];
    const double n = double(std::max<InstCount>(1, reader.instCount()));
    std::printf("loads        : %llu (%.1f%%)\n",
                (unsigned long long)by_type[0], 100.0 * by_type[0] / n);
    std::printf("stores       : %llu (%.1f%%)\n",
                (unsigned long long)by_type[1], 100.0 * by_type[1] / n);
    std::printf("branches     : %llu (%.1f%%)\n",
                (unsigned long long)by_type[2], 100.0 * by_type[2] / n);
    std::printf("other        : %llu (%.1f%%)\n",
                (unsigned long long)by_type[3], 100.0 * by_type[3] / n);
    return 0;
}

int
cmdVerify(const std::string &file, const std::string &spec)
{
    TraceReader reader(file);
    auto source = makeTrace(spec);
    if (reader.name() != source->name()) {
        std::fprintf(stderr,
                     "verify FAILED: %s records workload '%s', spec "
                     "'%s' names '%s'\n",
                     file.c_str(), reader.name().c_str(), spec.c_str(),
                     source->name().c_str());
        return 1;
    }
    while (reader.position() < reader.instCount()) {
        const InstCount at = reader.position();
        const auto recorded = reader.next();
        const auto expected = source->next();
        if (recorded != expected) {
            std::fprintf(stderr,
                         "verify FAILED: %s diverges from '%s' at "
                         "instruction %llu\n",
                         file.c_str(), spec.c_str(),
                         (unsigned long long)at);
            return 1;
        }
    }
    std::printf("verify OK: %s matches %llu instructions of '%s'\n",
                file.c_str(), (unsigned long long)reader.instCount(),
                spec.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    // Each subcommand pins its exact arity before touching argv[2..4]:
    // extra or missing operands fall through to usage() rather than
    // reading out of bounds or silently ignoring arguments.
    try {
        if (cmd == "record" && argc == 5)
            return cmdRecord(argv[2], argv[3], argv[4]);
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "verify" && argc == 4)
            return cmdVerify(argv[2], argv[3]);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    usage();
}
