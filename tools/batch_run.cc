/**
 * @file
 * Sharded multi-benchmark batch runner over the persistent result
 * cache (src/batch/, docs/batch.md).
 *
 *   batch_run plan   <manifest> [--cache-dir D]
 *   batch_run run    <manifest> [--shard I/N] [--threads T]
 *                    [--cache-dir D] [--no-cache] [--json] [--quiet]
 *                    [--timings]
 *   batch_run status <manifest> [--cache-dir D]
 *   batch_run gc     <manifest> [--cache-dir D] [--force]
 *
 * `plan` prints the expanded cells (index, key, workload, config,
 * schedule, method, cached?) without running anything. `run` executes
 * this shard's cells — serving cache hits without simulating — and
 * prints one TSV row (or JSON object) per cell to stdout; counters go
 * to stderr so shard outputs can be diffed. `status` reports per-cell
 * cache presence plus the cache's run counters (last_run_executed=0
 * after a fully cached run is the CI smoke check); when the manifest
 * is absent or malformed it warn()s and still reports the counters,
 * which fleet monitors and the batch service's STATS path rely on.
 * `gc` previews the
 * cache entries the manifest no longer references and deletes them
 * with --force (the default cache directory is shared across
 * manifests and figure benchmarks, so "unreferenced by this
 * manifest" is not "worthless").
 *
 * Numbers are printed with %.17g so a TSV row round-trips every double
 * exactly: two runs (sharded + merged vs. unsharded, cached vs.
 * direct) are bit-identical iff their outputs diff clean.
 *
 * `--timings` appends the measured hot-path phase timings
 * (src/profiling/hotpath.hh) of the run that *produced* each result —
 * for a cache hit, the original executing run, replayed verbatim from
 * the cache entry. Measured wall-clock is nondeterministic, so these
 * columns are opt-in and excluded from the diff-clean contract above
 * (docs/performance.md).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "base/json.hh"
#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/report_text.hh"
#include "batch/runner.hh"
#include "profiling/hotpath.hh"
#include "workload/trace_registry.hh"

namespace
{

using namespace delorean;
using namespace delorean::batch;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: batch_run plan   <manifest> [--cache-dir D]\n"
        "       batch_run run    <manifest> [--shard I/N] [--threads T]\n"
        "                        [--cache-dir D] [--no-cache] [--json]\n"
        "                        [--quiet] [--timings]\n"
        "       batch_run status <manifest> [--cache-dir D]\n"
        "       batch_run gc     <manifest> [--cache-dir D] [--force]\n"
        "manifest directives: workload SPEC | config NAME k=v... |\n"
        "                     schedule NAME k=v... | methods a,b,c\n"
        "%s\n",
        workload::traceSpecHelp());
    std::exit(1);
}

struct CliOptions
{
    std::string manifest;
    BatchOptions batch;
    bool json = false;
    bool force = false;
    bool timings = false;
};

/** batch::parseU32 with CLI-flavoured fatal(): atoi's silent 0 on
 *  junk would quietly run the wrong shard subset or thread count. */
unsigned
parseUnsigned(const std::string &text, const char *what)
{
    try {
        return parseU32(text);
    } catch (const BatchError &) {
        fatal("%s: expected a number, got '%s'", what, text.c_str());
    }
    return 0;
}

CliOptions
parseCli(int argc, char **argv, int first)
{
    CliOptions cli;
    cli.batch.verbose = true;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--shard") {
            const std::string spec = next();
            const auto slash = spec.find('/');
            fatal_if(slash == std::string::npos,
                     "--shard wants I/N, got '%s'", spec.c_str());
            cli.batch.shard_index =
                parseUnsigned(spec.substr(0, slash), "--shard index");
            cli.batch.shard_count =
                parseUnsigned(spec.substr(slash + 1), "--shard count");
        } else if (arg == "--threads") {
            cli.batch.threads = parseUnsigned(next(), "--threads");
        } else if (arg == "--cache-dir") {
            cli.batch.cache_dir = next();
        } else if (arg == "--no-cache") {
            cli.batch.use_cache = false;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--timings") {
            cli.timings = true;
        } else if (arg == "--quiet") {
            cli.batch.verbose = false;
        } else if (arg == "--force") {
            cli.force = true;
        } else if (cli.manifest.empty() && arg[0] != '-') {
            cli.manifest = arg;
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (cli.manifest.empty())
        usage();
    return cli;
}

/** Per-cell TSV table shared by plan/status. @return cells cached. */
std::size_t
printCellTable(const BatchPlan &plan, const ResultCache &cache)
{
    std::size_t cached = 0;
    std::printf("#index\tkey\tworkload\tconfig\tschedule\tmethod\t"
                "cached\n");
    for (const auto &cell : plan.cells()) {
        const bool hit = cache.contains(cell.key);
        cached += hit;
        std::printf("%zu\t%s\t%s\t%s\t%s\t%s\t%s\n", cell.index,
                    cell.key.hex().c_str(), cell.workload.c_str(),
                    cell.config_name.c_str(),
                    cell.schedule_name.c_str(), cell.method.c_str(),
                    hit ? "yes" : "no");
    }
    return cached;
}

int
cmdPlan(const CliOptions &cli)
{
    const auto plan = BatchPlan::fromManifest(cli.manifest);
    const ResultCache cache(cli.batch.cache_dir);
    printCellTable(plan, cache);
    std::fprintf(stderr, "[batch] %zu cells (cache: %s)\n",
                 plan.cells().size(), cache.dir().c_str());
    return 0;
}

void
printResultJson(const BatchCell &cell, const sampling::MethodResult &r,
                bool timings, bool last)
{
    std::printf(
        "  {\"workload\": \"%s\", \"config\": \"%s\", "
        "\"schedule\": \"%s\", \"method\": \"%s\", "
        "\"cpi\": %.17g, \"mpki\": %.17g, \"mips\": %.17g, "
        "\"wall_seconds\": %.17g, \"reuse_samples\": %llu, "
        "\"traps\": %llu, \"false_positives\": %llu, "
        "\"keys_total\": %llu, \"keys_explored\": %llu, "
        "\"keys_unresolved\": %llu, \"avg_explorers\": %.17g, "
        "\"windows_total\": %llu, \"windows_replayed\": %llu, "
        "\"confidence\": %.17g, \"ci_error\": %.17g",
        jsonEscape(cell.workload).c_str(),
        jsonEscape(cell.config_name).c_str(),
        jsonEscape(cell.schedule_name).c_str(),
        jsonEscape(cell.method).c_str(), r.cpi(),
        r.mpki(), r.mips, r.wall_seconds,
        (unsigned long long)r.reuse_samples,
        (unsigned long long)r.traps,
        (unsigned long long)r.false_positives,
        (unsigned long long)r.keys_total,
        (unsigned long long)r.keys_explored,
        (unsigned long long)r.keys_unresolved, r.avg_explorers,
        (unsigned long long)r.windows_total,
        (unsigned long long)r.windows_replayed, r.confidence,
        r.ci_error);
    if (timings) {
        const auto &m = r.cost.measured();
        std::printf(", \"timings\": {");
        for (std::size_t p = 0; p < profiling::hot_phase_count; ++p) {
            const auto phase = profiling::HotPhase(p);
            std::printf(
                "%s\"%s\": {\"ns\": %.17g, \"calls\": %llu, "
                "\"items\": %llu}",
                p == 0 ? "" : ", ", profiling::hotPhaseName(phase),
                m.ns[p], (unsigned long long)m.calls[p],
                (unsigned long long)m.items[p]);
        }
        std::printf("}");
    }
    std::printf("}%s\n", last ? "" : ",");
}

int
cmdRun(const CliOptions &cli)
{
    const auto plan = BatchPlan::fromManifest(cli.manifest);
    const auto report = BatchRunner::run(plan, cli.batch);

    if (cli.json)
        std::printf("[\n");
    else
        printResultHeaderTsv(stdout, cli.timings);
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const auto &outcome = report.outcomes[i];
        const auto &cell = plan.cells()[outcome.cell];
        if (cli.json)
            printResultJson(cell, outcome.result, cli.timings,
                            i + 1 == report.outcomes.size());
        else
            printResultRowTsv(stdout, cell.workload, cell.config_name,
                              cell.schedule_name, cell.method,
                              outcome.result, cli.timings);
    }
    if (cli.json)
        std::printf("]\n");

    std::fprintf(stderr,
                 "[batch] shard %u/%u: executed=%llu cached=%llu "
                 "skipped=%llu\n",
                 cli.batch.shard_index, cli.batch.shard_count,
                 (unsigned long long)report.executed,
                 (unsigned long long)report.cache_hits,
                 (unsigned long long)report.skipped);
    return 0;
}

int
cmdStatus(const CliOptions &cli)
{
    const ResultCache cache(cli.batch.cache_dir);

    // The cache's run counters exist independently of any one plan:
    // an absent or malformed manifest (a fleet monitor — or the batch
    // service's STATS path — often has only the cache directory)
    // degrades to counters-only reporting instead of erroring out.
    std::optional<BatchPlan> plan;
    try {
        plan.emplace(BatchPlan::fromManifest(cli.manifest));
    } catch (const BatchError &e) {
        warn("%s; reporting cache counters only", e.what());
    }

    if (plan) {
        const std::size_t cached = printCellTable(*plan, cache);
        std::printf("cells=%zu cached=%zu missing=%zu\n",
                    plan->cells().size(), cached,
                    plan->cells().size() - cached);
    }
    const auto stats = cache.stats();
    std::printf("last_run_executed=%llu last_run_cached=%llu "
                "total_executed=%llu total_cached=%llu\n",
                (unsigned long long)stats.last_run_executed,
                (unsigned long long)stats.last_run_cached,
                (unsigned long long)stats.total_executed,
                (unsigned long long)stats.total_cached);
    return 0;
}

int
cmdGc(const CliOptions &cli)
{
    const auto plan = BatchPlan::fromManifest(cli.manifest);
    const ResultCache cache(cli.batch.cache_dir);

    std::unordered_set<std::string> keep;
    for (const auto &hex : plan.keyHexes())
        keep.insert(hex);

    // gc is scoped to ONE manifest, but the default cache directory
    // is shared by every manifest and figure benchmark — deleting
    // "unreferenced" entries can destroy hours of other plans'
    // results. Preview by default; destruction takes --force.
    if (!cli.force) {
        std::size_t stale = 0;
        for (const auto &hex : cache.entries())
            if (!keep.count(hex))
                ++stale;
        std::printf("gc (dry run): %zu stale of %zu entries in %s\n",
                    stale, cache.entries().size(), cache.dir().c_str());
        if (stale > 0)
            std::printf("gc: entries from OTHER manifests/figures in "
                        "a shared cache count as stale here; pass "
                        "--force to delete\n");
        return 0;
    }
    const std::size_t removed = cache.gc(keep);
    std::printf("gc: removed %zu entries from %s (%zu kept)\n", removed,
                cache.dir().c_str(), cache.entries().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string cmd = argv[1];
    try {
        const auto cli = parseCli(argc, argv, 2);
        if (cmd == "plan")
            return cmdPlan(cli);
        if (cmd == "run")
            return cmdRun(cli);
        if (cmd == "status")
            return cmdStatus(cli);
        if (cmd == "gc")
            return cmdGc(cli);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    usage();
}
