#!/usr/bin/env python3
"""Sanity-check a BENCH_*.json perf report (docs/performance.md).

Validates — without any third-party dependency — that the report:
  * parses as JSON with schema "delorean-bench-1";
  * was produced by an assertions-off build (NDEBUG), since timings
    from assertion builds are not comparable;
  * contains at least one workload, each carrying every hot phase
    with non-negative ns/calls/items and the derived throughput
    fields;
  * if a baseline is embedded, that it validates recursively.

Usage: check_bench_json.py [BENCH_pr6.json ...]
Exits non-zero with a diagnostic on the first violation.
"""

import json
import sys

REQUIRED_PHASES = (
    "scout",
    "explorer_replay",
    "vicinity",
    "statstack_solve",
    "analyze",
)
WORKLOAD_FIELDS = (
    "wall_seconds",
    "insts",
    "insts_per_sec",
    "traps",
    "traps_per_sec",
    "phases",
)


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(report, path, *, is_baseline=False):
    where = f"{path}{' (baseline)' if is_baseline else ''}"
    if report.get("schema") != "delorean-bench-1":
        fail(f"{where}: schema is {report.get('schema')!r}, "
             "expected 'delorean-bench-1'")
    build = report.get("build", "")
    if "NDEBUG" not in build:
        fail(f"{where}: build {build!r} is not an NDEBUG build; "
             "perf numbers from assertion builds are not comparable")
    workloads = report.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        fail(f"{where}: no workloads")
    for name, w in workloads.items():
        for field in WORKLOAD_FIELDS:
            if field not in w:
                fail(f"{where}: workload {name!r} missing {field!r}")
        if w["wall_seconds"] <= 0:
            fail(f"{where}: workload {name!r} has non-positive wall")
        phases = w["phases"]
        for phase in REQUIRED_PHASES:
            if phase not in phases:
                fail(f"{where}: workload {name!r} missing phase "
                     f"{phase!r}")
            p = phases[phase]
            for key in ("ns", "calls", "items", "items_per_sec"):
                if key not in p:
                    fail(f"{where}: {name}/{phase} missing {key!r}")
                if p[key] < 0:
                    fail(f"{where}: {name}/{phase}/{key} is negative")
        # The replay phase is the tracked trajectory: it must have
        # actually measured something.
        if phases["explorer_replay"]["ns"] <= 0:
            fail(f"{where}: workload {name!r} measured no "
                 "explorer_replay time")
    baseline = report.get("baseline")
    if baseline is not None:
        check_report(baseline, path, is_baseline=True)


def main(argv):
    paths = argv[1:] or ["BENCH_pr6.json"]
    for path in paths:
        try:
            with open(path, "rb") as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            fail(f"{path}: {e}")
        check_report(report, path)
        n = len(report["workloads"])
        print(f"check_bench_json: {path}: OK "
              f"({n} workload{'s' if n != 1 else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
