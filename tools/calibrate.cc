/**
 * @file
 * Developer calibration harness: one big table per benchmark with every
 * quantity the paper's figures depend on, so workload profiles and host
 * cost constants can be tuned against the published shapes.
 *
 *   ./calibrate [spacing] [trace-spec ...]
 *
 * Workloads are trace specs (workload/trace_registry.hh): bare SPEC
 * names, spec:NAME, file:PATH recordings, or champsim:PATH traces.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "core/delorean.hh"
#include "sampling/coolsim.hh"
#include "sampling/metrics.hh"
#include "sampling/smarts.hh"
#include "workload/spec_profiles.hh"
#include "workload/trace_registry.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;

    // Strict parse (batch/plan.hh): atoll would turn "5m" into 5 and
    // "junk" into a zero spacing that fatal()s much later, mid-run.
    InstCount spacing = 5'000'000;
    if (argc > 1) {
        try {
            spacing = batch::parseCount(argv[1]);
        } catch (const batch::BatchError &e) {
            fatal("spacing: %s", e.what());
        }
    }
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = workload::specBenchmarkNames();

    core::DeloreanConfig cfg;
    cfg.schedule.spacing = spacing;

    std::printf("# spacing=%llu scale=%.0f regions=%u\n",
                (unsigned long long)spacing, cfg.schedule.scaleFactor(),
                cfg.schedule.num_regions);
    std::printf(
        "%-11s %7s %7s %7s | %6s %6s %6s | %6s %6s | %7s %7s %7s |"
        " %5s %5s %5s %5s %5s | %9s %9s | %8s %8s\n",
        "bench", "cpiS", "cpiC", "cpiD", "errC%", "errD%", "mpkiS",
        "keys/r", "expl/r", "mipsS", "mipsC", "mipsD", "avgE", "e1%",
        "e2%", "e3%", "e4%", "samplC", "samplD", "trapC", "trapD");

    double sum_errC = 0, sum_errD = 0, sum_mipsS = 0, sum_mipsC = 0,
           sum_mipsD = 0, sum_spdS = 0, sum_spdC = 0;
    std::uint64_t sum_samplC = 0, sum_samplD = 0;

    for (const auto &spec : names) {
        auto trace = [&] {
            try {
                return workload::makeTrace(spec);
            } catch (const std::exception &e) {
                fatal("%s", e.what());
                return std::unique_ptr<workload::TraceSource>();
            }
        }();
        const std::string &name = trace->name();
        sampling::MethodResult s, c, d;
        try {
            s = sampling::SmartsMethod::run(*trace, cfg);
            c = sampling::CoolSimMethod::run(*trace, cfg);
            d = core::DeloreanMethod::run(*trace, cfg);
        } catch (const std::exception &e) {
            // E.g. a recorded trace shorter than the schedule.
            fatal("%s: %s", spec.c_str(), e.what());
        }

        const double errC = sampling::cpiErrorPct(s, c);
        const double errD = sampling::cpiErrorPct(s, d);
        const double keys_r =
            double(d.keys_total) / cfg.schedule.num_regions;
        const double expl_r =
            double(d.keys_explored) / cfg.schedule.num_regions;

        double found[4];
        const double tot = double(std::max<Counter>(
            1, d.keys_by_explorer[0] + d.keys_by_explorer[1] +
                   d.keys_by_explorer[2] + d.keys_by_explorer[3]));
        for (int k = 0; k < 4; ++k)
            found[k] = 100.0 * double(d.keys_by_explorer[k]) / tot;

        std::printf(
            "%-11s %7.3f %7.3f %7.3f | %6.1f %6.1f %6.1f | %6.0f %6.0f |"
            " %7.2f %7.1f %7.1f | %5.1f %5.0f %5.0f %5.0f %5.0f |"
            " %9llu %9llu | %8llu %8llu\n",
            name.c_str(), s.cpi(), c.cpi(), d.cpi(), errC, errD,
            s.mpki(), keys_r, expl_r, s.mips, c.mips, d.mips,
            d.avg_explorers, found[0], found[1], found[2], found[3],
            (unsigned long long)c.reuse_samples,
            (unsigned long long)d.reuse_samples,
            (unsigned long long)c.traps, (unsigned long long)d.traps);

        sum_errC += errC;
        sum_errD += errD;
        sum_mipsS += s.mips;
        sum_mipsC += c.mips;
        sum_mipsD += d.mips;
        sum_spdS += d.wall_seconds > 0
                        ? s.wall_seconds / d.wall_seconds
                        : 0;
        sum_spdC += d.wall_seconds > 0
                        ? c.wall_seconds / d.wall_seconds
                        : 0;
        sum_samplC += c.reuse_samples;
        sum_samplD += d.reuse_samples;
    }

    const double n = double(names.size());
    std::printf("\n# paper targets: errC~9.1 errD~3.5 mipsS=1.3 "
                "mipsC=21.9 mipsD=126 spdupS=96 spdupC=5.7 "
                "samples C/D=30x (340k vs 11k)\n");
    std::printf("# averages: errC=%.1f errD=%.1f mipsS=%.2f mipsC=%.1f "
                "mipsD=%.1f | spdup vs S=%.1f vs C=%.2f | samples "
                "C=%.0fk D=%.1fk ratio=%.1f\n",
                sum_errC / n, sum_errD / n, sum_mipsS / n,
                sum_mipsC / n, sum_mipsD / n, sum_spdS / n,
                sum_spdC / n, double(sum_samplC) / n / 1000.0,
                double(sum_samplD) / n / 1000.0,
                double(sum_samplC) / double(std::max<Counter>(
                                        1, sum_samplD)));
    return 0;
}
