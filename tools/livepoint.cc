/**
 * @file
 * Live-point checkpoint tool: record, inspect, verify and consume
 * DLRNLVP1 warm-state files (src/checkpoint/, docs/checkpoints.md).
 *
 *   livepoint record <trace-spec> <out.dlvp> [--spacing N] [--regions N]
 *   livepoint info   <file.dlvp>
 *   livepoint verify <file.dlvp> <trace-spec> [--spacing N] [--regions N]
 *   livepoint run    <trace-spec> [--livepoints F] [--spacing N]
 *                    [--regions N] [--confidence P] [--error E]
 *                    [--seed N] [--min-windows N] [--timings]
 *
 * `record` runs the full warm-up (Scout + Explorers) once and persists
 * every region's warm state. `info` prints the header and a per-window
 * summary without re-simulating anything. `verify` re-runs the warm-up
 * from the trace source and compares every window bit-for-bit — the CI
 * round-trip check. `run` executes the DeLorean method, resuming from
 * live-points when --livepoints is given (invalid files degrade to a
 * fresh warm-up with a warning) and early-stopping when --confidence
 * and --error are set; it prints the canonical TSV row on stdout and a
 * machine-greppable coverage line on stderr:
 *
 *   [livepoint] windows_replayed=R windows_total=T ci_error=E
 *
 * All numeric arguments use the strict batch parsers — junk or
 * overflow is a fatal error, never a silent zero.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "batch/report_text.hh"
#include "checkpoint/livepoint.hh"
#include "core/delorean.hh"
#include "workload/trace_registry.hh"

namespace
{

using namespace delorean;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: livepoint record <trace-spec> <out.dlvp> [options]\n"
        "       livepoint info   <file.dlvp>\n"
        "       livepoint verify <file.dlvp> <trace-spec> [options]\n"
        "       livepoint run    <trace-spec> [--livepoints F] "
        "[options]\n"
        "options: --spacing N --regions N (must match the recording)\n"
        "         --confidence P --error E --seed N --min-windows N\n"
        "         --timings (run only)\n"
        "%s\n",
        workload::traceSpecHelp());
    std::exit(1);
}

struct CliOptions
{
    std::vector<std::string> positional;
    core::DeloreanConfig config;
    bool timings = false;
};

std::uint64_t
parseCountArg(const char *text, const char *what)
{
    try {
        return batch::parseCount(text);
    } catch (const batch::BatchError &e) {
        fatal("%s: %s", what, e.what());
    }
    return 0;
}

double
parseRealArg(const char *text, const char *what)
{
    try {
        return batch::parseReal(text);
    } catch (const batch::BatchError &e) {
        fatal("%s: %s", what, e.what());
    }
    return 0;
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--spacing")
            cli.config.schedule.spacing =
                parseCountArg(next(), "--spacing");
        else if (arg == "--regions")
            cli.config.schedule.num_regions = unsigned(
                parseCountArg(next(), "--regions"));
        else if (arg == "--confidence")
            cli.config.confidence = parseRealArg(next(), "--confidence");
        else if (arg == "--error")
            cli.config.target_error = parseRealArg(next(), "--error");
        else if (arg == "--seed")
            cli.config.window_seed = parseCountArg(next(), "--seed");
        else if (arg == "--min-windows")
            cli.config.min_windows =
                unsigned(parseCountArg(next(), "--min-windows"));
        else if (arg == "--livepoints")
            cli.config.livepoint_file = next();
        else if (arg == "--timings")
            cli.timings = true;
        else if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        else
            cli.positional.push_back(arg);
    }
    cli.config.schedule.validate();
    fatal_if(cli.config.confidence >= 100.0,
             "--confidence must be below 100 (0 = exact mode)");
    return cli;
}

int
cmdRecord(const std::string &spec, const std::string &out,
          const core::DeloreanConfig &config)
{
    const auto file = checkpoint::recordLivePoints(spec, config);
    checkpoint::writeLivePointFile(out, file);
    std::printf("recorded %zu live-points of '%s' (key %s) to %s\n",
                file.windows.size(), file.workload.c_str(),
                file.key.hex().c_str(), out.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const auto file = checkpoint::readLivePointFile(path);
    std::printf("file         : %s\n", path.c_str());
    std::printf("workload     : %s\n", file.workload.c_str());
    std::printf("key          : %s\n", file.key.hex().c_str());
    std::printf("regions      : %u\n", file.schedule.num_regions);
    std::printf("spacing      : %llu\n",
                (unsigned long long)file.schedule.spacing);
    std::printf("#window\toffset\tkeys\tengaged\tback\tunresolved\t"
                "vicinity_samples\n");
    for (const auto &w : file.windows)
        std::printf("%u\t%llu\t%zu\t%u\t%zu\t%zu\t%llu\n", w.region,
                    (unsigned long long)w.warming_start,
                    w.warm.keys.keys.size(), w.warm.explored.engaged,
                    w.warm.explored.back_distance.size(),
                    w.warm.explored.unresolved.size(),
                    (unsigned long long)w.warm.explored.vicinity_samples);
    return 0;
}

int
cmdVerify(const std::string &path, const std::string &spec,
          const core::DeloreanConfig &config)
{
    const auto file = checkpoint::readLivePointFile(path);
    const auto key = checkpoint::livePointKey(spec, config);
    if (!(file.key == key)) {
        std::fprintf(stderr,
                     "verify FAILED: %s carries key %s, spec/config "
                     "derive %s\n",
                     path.c_str(), file.key.hex().c_str(),
                     key.hex().c_str());
        return 1;
    }
    const auto fresh = checkpoint::recordLivePoints(spec, config);
    if (fresh.windows.size() != file.windows.size()) {
        std::fprintf(stderr,
                     "verify FAILED: %s holds %zu windows, fresh "
                     "warm-up produced %zu\n",
                     path.c_str(), file.windows.size(),
                     fresh.windows.size());
        return 1;
    }
    for (std::size_t r = 0; r < file.windows.size(); ++r) {
        if (!(file.windows[r] == fresh.windows[r])) {
            std::fprintf(stderr,
                         "verify FAILED: %s window %zu diverges from a "
                         "fresh warm-up of '%s'\n",
                         path.c_str(), r, spec.c_str());
            return 1;
        }
    }
    std::printf("verify OK: %s matches a fresh warm-up of '%s' "
                "(%zu windows)\n",
                path.c_str(), spec.c_str(), file.windows.size());
    return 0;
}

int
cmdRun(const std::string &spec, const core::DeloreanConfig &config,
       bool timings)
{
    auto trace = workload::makeTrace(spec);
    sampling::MethodResult result;
    bool resumed = false;
    if (!config.livepoint_file.empty()) {
        try {
            const auto warm = checkpoint::loadForRun(
                spec, config, config.livepoint_file);
            result = core::DeloreanMethod::run(*trace, config, &warm);
            resumed = true;
        } catch (const checkpoint::CheckpointError &e) {
            // stdout carries the diffable TSV row; keep the warning on
            // stderr next to the [livepoint] coverage line.
            std::fprintf(stderr,
                         "warn: %s; falling back to a fresh warm-up\n",
                         e.what());
        }
    }
    if (!resumed)
        result = core::DeloreanMethod::run(*trace, config);

    batch::printResultHeaderTsv(stdout, timings);
    batch::printResultRowTsv(stdout, spec, "cli", "cli", "delorean",
                             result, timings);
    std::fprintf(stderr,
                 "[livepoint] windows_replayed=%llu windows_total=%llu "
                 "ci_error=%.17g resumed=%d\n",
                 (unsigned long long)result.windows_replayed,
                 (unsigned long long)result.windows_total,
                 result.ci_error, resumed ? 1 : 0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    try {
        const CliOptions cli = parseCli(argc, argv);
        const auto &pos = cli.positional;
        if (cmd == "record" && pos.size() == 2)
            return cmdRecord(pos[0], pos[1], cli.config);
        if (cmd == "info" && pos.size() == 1)
            return cmdInfo(pos[0]);
        if (cmd == "verify" && pos.size() == 2)
            return cmdVerify(pos[0], pos[1], cli.config);
        if (cmd == "run" && pos.size() == 1)
            return cmdRun(pos[0], cli.config, cli.timings);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    usage();
}
