#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans every tracked-ish *.md file (skipping build trees) for inline
markdown links/images and verifies that relative targets exist, and
that same-file/cross-file heading anchors resolve. External links
(http/https/mailto) are not fetched — CI must not depend on the
network. Exits 1 listing every broken link.

Usage: python3 tools/check_md_links.py [repo-root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".delorean-cache", ".ccache", "Testing"}

# Inline links/images: [text](target) — tolerates one level of nested
# brackets in the text; reference-style links are not used in this repo.
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    heading = re.sub(r"[^\w\- ]", "", heading.lower())
    return heading.strip().replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def headings(path: str):
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(anchor_of(m.group(1)))
    return anchors


def links(path: str):
    """Yield (line_number, target) outside fenced code blocks."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    anchor_cache = {}

    def anchors_for(path):
        if path not in anchor_cache:
            anchor_cache[path] = headings(path)
        return anchor_cache[path]

    errors = []
    checked = 0
    for md in md_files(root):
        rel_md = os.path.relpath(md, root)
        for lineno, target in links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            checked += 1
            target_path, _, fragment = target.partition("#")
            if target_path:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md), target_path))
            else:  # pure in-page anchor
                dest = md
            if not os.path.exists(dest):
                errors.append(f"{rel_md}:{lineno}: broken link "
                              f"'{target}' (no such file)")
                continue
            if fragment and dest.endswith(".md"):
                if anchor_of(fragment) not in anchors_for(dest):
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'{target}'")

    for error in errors:
        print(error)
    print(f"checked {checked} intra-repo links; "
          f"{len(errors)} broken", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
