/**
 * @file
 * Measured performance report over the pinned quick-schedule suite
 * (bench/perf_harness.hh, docs/performance.md).
 *
 *   bench_report [--quick] [--out FILE] [--baseline FILE]
 *                [--bench a,b,c] [--repeats N] [--group N]
 *
 * Runs the suite serially, prints a per-workload phase breakdown, and
 * writes a BENCH_*.json report (default BENCH_pr7.json). `--quick`
 * trims the suite to bzip2 with one repeat — the CI smoke
 * configuration. `--group N` sets how many LLC-sweep cells are
 * co-scheduled per workload (default 3; `--group 1` reproduces the
 * pre-PR-7 solo shape). `--baseline FILE` embeds an earlier report
 * verbatim under "baseline" and prints the Explorer-replay speedup
 * against it, so one committed file carries both sides of a
 * before/after comparison.
 *
 * All timings here are measured host wall-clock (steady_clock), not
 * the modeled host cost the figures report: run on an otherwise idle
 * machine, and only compare numbers from the same machine and build
 * flags.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "perf_harness.hh"

namespace
{

using namespace delorean;
using namespace delorean::bench;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_report [--quick] [--out FILE]\n"
                 "                    [--baseline FILE] [--bench a,b,c]\n"
                 "                    [--repeats N] [--group N]\n");
    std::exit(1);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot read baseline '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    PerfOptions opt;
    std::string out_path = "BENCH_pr7.json";
    std::string baseline_path;
    bool quick = false;
    bool bench_given = false;
    bool repeats_given = false;
    bool out_given = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_path = next();
            out_given = true;
        } else if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--bench") {
            opt.workloads = splitCsv(next());
            bench_given = true;
        } else if (arg == "--repeats") {
            // batch::parseU32 rejects atoi's silent junk/negatives.
            const char *text = next();
            try {
                opt.repeats = delorean::batch::parseU32(text);
            } catch (const delorean::batch::BatchError &) {
                fatal("--repeats: expected a number, got '%s'", text);
            }
            fatal_if(opt.repeats == 0, "--repeats must be >= 1");
            repeats_given = true;
        } else if (arg == "--group") {
            const char *text = next();
            try {
                opt.group_size = delorean::batch::parseU32(text);
            } catch (const delorean::batch::BatchError &) {
                fatal("--group: expected a number, got '%s'", text);
            }
            fatal_if(opt.group_size == 0, "--group must be >= 1");
        } else {
            usage();
        }
    }
    // --quick only trims what wasn't chosen explicitly, so flag order
    // never matters: `--bench mcf --quick` measures mcf, quickly.
    if (quick) {
        if (!bench_given)
            opt.workloads = {"bzip2"};
        if (!repeats_given)
            opt.repeats = 1;
    }
    // Comparing against a committed trajectory file must not clobber
    // it: when --baseline is given and --out is not, write elsewhere.
    if (!out_given && baseline_path == out_path)
        out_path = "BENCH_local.json";
    if (opt.workloads.empty())
        usage();

    try {
        const PerfReport report = runPerfSuite(opt);

        std::printf("%-10s %9s %11s %11s  per-phase ns (scout/replay/"
                    "vicinity/solve/analyze)\n",
                    "workload", "wall_s", "Minsts/s", "replay_M/s");
        for (const auto &m : report.measurements) {
            std::printf("%-10s %9.3f %11.1f %11.1f  "
                        "%.3g/%.3g/%.3g/%.3g/%.3g\n",
                        m.workload.c_str(), m.wall_seconds,
                        m.instsPerSec() / 1e6,
                        m.replayInstsPerSec() / 1e6, m.phases.ns[0],
                        m.phases.ns[1], m.phases.ns[2], m.phases.ns[3],
                        m.phases.ns[4]);
        }

        std::string baseline_json;
        if (!baseline_path.empty())
            baseline_json = readFile(baseline_path);
        const std::string json =
            writeBenchJson(report, out_path, baseline_json);
        std::fprintf(stderr, "[perf] wrote %s\n", out_path.c_str());

        if (!baseline_json.empty()) {
            for (const auto &m : report.measurements) {
                const double base = replayInstsPerSecFromJson(
                    baseline_json, m.workload);
                if (base <= 0.0)
                    continue;
                std::printf("%s: explorer replay %.1f -> %.1f Minsts/s "
                            "(%.2fx vs baseline)\n",
                            m.workload.c_str(), base / 1e6,
                            m.replayInstsPerSec() / 1e6,
                            m.replayInstsPerSec() / base);
            }
        }
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return 0;
}
