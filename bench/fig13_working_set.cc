/**
 * @file
 * Figure 13: working-set curves (MPKI vs LLC size, 1..512 MiB) for
 * cactusADM, leslie3d and lbm — SMARTS reference vs DeLorean with one
 * shared warm-up (design-space mode).
 *
 * Runs at a larger default spacing (25 M instructions) than the other
 * figures so that the biggest structures are re-referenced within the
 * deepest Explorer horizon; the large-cache knee consequently appears
 * at a few tens of MiB instead of the paper's 512 MiB (the trace is
 * 40x shorter — see EXPERIMENTS.md).
 */

#include <cstdio>

#include "common.hh"
#include "core/dse.hh"
#include "statmodel/working_set.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    auto opt = bench::Options::parse(argc, argv);
    if (opt.spacing == 5'000'000) // default not overridden
        opt.spacing = 25'000'000;
    if (opt.benchmarks.empty())
        opt.benchmarks = {"cactusADM", "leslie3d", "lbm"};

    const auto sizes = statmodel::paperLlcSizes();

    bench::printHeading(
        "Working-set curves: MPKI vs LLC size (SMARTS vs DeLorean)",
        "Figure 13");

    for (const auto &name : opt.benchmarkList()) {
        std::fprintf(stderr, "[fig13] %s...\n", name.c_str());
        bench::guarded(name, [&] {
        auto trace = bench::makeTraceOrDie(name);
        const auto cfg = opt.config(1 * MiB);

        // Both halves are memoized in the persistent result cache
        // (docs/batch.md): the multi-size reference as one SizeCurve,
        // the DSE sweep as one MethodResult per size.
        const auto ref = bench::cachedMultiSizeReference(
            name, *trace, cfg.schedule, cfg.hier, sizes, cfg.sim,
            opt.use_cache);
        const auto dse_points =
            bench::cachedDsePoints(name, *trace, cfg, sizes,
                                   opt.use_cache);

        std::printf("\n%s (MPKI; solid=SMARTS, dashed=DeLorean in the "
                    "paper)\n",
                    name.c_str());
        std::printf("%10s %12s %12s\n", "size", "SMARTS", "DeLorean");
        statmodel::WorkingSetCurve smarts_curve, delorean_curve;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            std::printf("%10s %12.2f %12.2f\n",
                        bench::mib(sizes[i]).c_str(), ref.mpki[i],
                        dse_points[i].mpki());
            smarts_curve.addPoint(sizes[i], ref.mpki[i]);
            delorean_curve.addPoint(sizes[i], dse_points[i].mpki());
        }
        const auto knees = smarts_curve.knees(0.4, 0.5);
        std::printf("knees (SMARTS): ");
        if (knees.empty())
            std::printf("none pronounced");
        for (const auto k : knees)
            std::printf("%s ", bench::mib(k).c_str());
        std::printf("\n");
        });
    }

    std::printf("\npaper: lbm shows knees near 8 MiB and 512 MiB; "
                "cactusADM and leslie3d decline without a pronounced "
                "knee. DeLorean tracks the reference curves.\n");
    return 0;
}
