/**
 * @file
 * The measured performance harness behind `tools/bench_report`.
 *
 * Runs a pinned quick-schedule suite (fixed workloads, fixed schedule,
 * serial execution) end to end through `DeloreanMethod::run`, collects
 * the hot-path phase timers (src/profiling/hotpath.hh) from each
 * result, and emits a `BENCH_*.json` report: per-phase nanoseconds,
 * derived throughputs (insts/s, traps/s), and per-figure wall-clock.
 * This file is the perf *trajectory* anchor — every committed
 * `BENCH_pr*.json` is a measurement future PRs regress against
 * (docs/performance.md documents the schema and methodology).
 *
 * Two deliberate choices keep reports comparable:
 *
 *  - best-of-N repeats (not mean): wall-clock noise on shared hosts is
 *    one-sided, so the minimum is the stable estimator;
 *  - the suite is *pinned*: changing workloads, schedule, or repeat
 *    count is a schema-visible change, not a knob.
 */

#ifndef DELOREAN_BENCH_PERF_HARNESS_HH
#define DELOREAN_BENCH_PERF_HARNESS_HH

#include <string>
#include <vector>

#include "profiling/hotpath.hh"
#include "sampling/results.hh"

namespace delorean::bench
{

/** Knobs of one harness invocation (defaults = the pinned suite). */
struct PerfOptions
{
    /** Workload specs to measure (pinned default, bzip2 first). */
    std::vector<std::string> workloads{"bzip2", "mcf", "gamess"};

    /** Quick schedule: 1 M spacing x 10 regions (the `--quick` knobs
     *  the figure binaries use). */
    InstCount spacing = 1'000'000;
    unsigned regions = 10;

    /**
     * Pinned LLC size: small enough that the lukewarm filter leaves
     * real work for every Explorer, so the replay phase the report
     * tracks is exercised (the quick-schedule golden configuration).
     */
    std::uint64_t llc_size = 2 * 1024 * 1024;

    /** Serial on purpose: phase wall-clock equals phase CPU time. */
    unsigned host_threads = 1;

    /**
     * Cells co-scheduled per workload: an LLC sweep of group_size
     * doublings starting at llc_size (2/4/8 MiB at the default 3),
     * run through DeloreanMethod::runGroup so every cell shares one
     * trace decode per window. 1 = solo run() (the pre-PR-7 suite
     * shape). The report aggregates phases across the group's cells:
     * shared work is attributed once, so items_per_sec is the honest
     * batch throughput a multi-config DSE sees.
     */
    unsigned group_size = 3;

    /** Timed repetitions per workload; the best (minimum wall) run's
     *  measurements are reported. */
    unsigned repeats = 3;

    /** Untimed warm-up runs per workload (page cache, allocator). */
    unsigned warmups = 1;
};

/** Measured outcome for one workload of the suite. */
struct PerfMeasurement
{
    std::string workload;

    /** End-to-end wall seconds of the best repeat ("per-fig wall": one
     *  full DeloreanMethod::run, the unit the figure binaries pay per
     *  cell). */
    double wall_seconds = 0.0;

    /** Schedule instructions covered by one repeat: spacing x regions,
     *  times the co-scheduled group size (total simulated cells). */
    InstCount insts = 0;

    /** Watchpoint stops of one repeat, summed over the group's cells
     *  (deterministic across repeats). */
    Counter traps = 0;

    /** Hot-path phase timers of the best repeat, merged across the
     *  group's cells (shared decode is attributed once, split evenly
     *  by the runner, so the sum equals the real wall spent). */
    profiling::PhaseTimings phases;

    /** Explorer replay throughput: window insts / replay wall. */
    double replayInstsPerSec() const;

    /** Whole-run throughput: schedule insts / wall. */
    double instsPerSec() const;

    /** Watchpoint stops handled per second of replay wall. */
    double trapsPerSec() const;
};

/** The full suite result plus run metadata. */
struct PerfReport
{
    PerfOptions options;
    std::vector<PerfMeasurement> measurements;

    /** Compiler/build identification embedded in the JSON. */
    static std::string buildDescription();
};

/** Run the pinned suite (prints progress to stderr). */
PerfReport runPerfSuite(const PerfOptions &options);

/**
 * Serialize @p report as BENCH_*.json. If @p baseline_json is
 * non-empty it must be the verbatim contents of an earlier report
 * (same schema), which is embedded under "baseline" so a single
 * committed file carries both sides of a before/after comparison.
 *
 * @return the JSON text written to @p path
 */
std::string writeBenchJson(const PerfReport &report,
                           const std::string &path,
                           const std::string &baseline_json);

/**
 * Pull `workloads.<workload>.phases.explorer_replay.insts_per_sec`
 * out of a BENCH_*.json text (tolerant scanner, no JSON dependency).
 * @return 0.0 when absent.
 */
double replayInstsPerSecFromJson(const std::string &json,
                                 const std::string &workload);

} // namespace delorean::bench

#endif // DELOREAN_BENCH_PERF_HARNESS_HH
