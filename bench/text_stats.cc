/**
 * @file
 * The in-text statistics of §3.1.2 and §3.2: lukewarm hit rates
 * ("27.5%..100%, average 93.5%"; with MSHRs "46.1%..100%, average
 * 96.7%") and key-cacheline counts per region ("1..2907, average 151").
 */

#include <algorithm>
#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading(
        "Lukewarm hit rates and key cachelines per detailed region",
        "Sections 3.1.2 and 3.2 (in-text statistics)");
    std::printf("%-11s %12s %12s %12s %12s\n", "benchmark", "luke-hit%",
                "w/ MSHR%", "keys/reg", "explored/reg");

    double min_keys = 1e18, max_keys = 0, sum_keys = 0;
    double sum_luke = 0, sum_mshr = 0;

    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const auto &sw = sweeps[i];
        // Lukewarm hit rate from DeLorean's detailed regions: accesses
        // resolved by the lukewarm state (L1 hits + lukewarm LLC hits)
        // out of all accesses; then adding MSHR (delayed) hits.
        // Rebuild from the original *spec* (not the display name), so
        // file-backed workloads re-run from their file.
        const auto &spec = opt.benchmarkList()[i];
        const auto cfg = opt.config(8 * MiB);
        sampling::MethodResult d;
        bench::guarded(spec, [&] {
            auto trace = bench::makeTraceOrDie(spec);
            d = core::DeloreanMethod::run(*trace, cfg);
        });

        const double refs = double(d.total.mem_refs);
        const double luke =
            double(d.total.classCount(cpu::AccessClass::L1Hit) +
                   d.total.classCount(cpu::AccessClass::LlcHit));
        const double mshr =
            double(d.total.classCount(cpu::AccessClass::MshrHit));
        const double luke_pct = 100.0 * luke / refs;
        const double mshr_pct = 100.0 * (luke + mshr) / refs;

        const double keys =
            double(d.keys_total) / double(cfg.schedule.num_regions);
        const double expl =
            double(d.keys_explored) / double(cfg.schedule.num_regions);

        std::printf("%-11s %12.1f %12.1f %12.0f %12.0f\n",
                    sw.smarts.benchmark.c_str(), luke_pct, mshr_pct,
                    keys, expl);

        min_keys = std::min(min_keys, keys);
        max_keys = std::max(max_keys, keys);
        sum_keys += keys;
        sum_luke += luke_pct;
        sum_mshr += mshr_pct;
    }

    const double n = double(sweeps.size());
    std::printf("\nlukewarm hit rate: avg %.1f%% (paper: 93.5%%, range "
                "27.5-100%%)\n",
                sum_luke / n);
    std::printf("with MSHR hits:    avg %.1f%% (paper: 96.7%%, range "
                "46.1-100%%)\n",
                sum_mshr / n);
    std::printf("key cachelines/region: avg %.0f, range %.0f-%.0f "
                "(paper: avg 151, range 1-2907)\n",
                sum_keys / n, min_keys, max_keys);
    return 0;
}
