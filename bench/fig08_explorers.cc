/**
 * @file
 * Figure 8: average number of Explorers engaged per benchmark.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading("Average number of Explorers engaged",
                        "Figure 8");
    std::printf("%-11s %10s  %s\n", "benchmark", "explorers",
                "(0-4; paper highlights below)");

    for (const auto &sw : sweeps) {
        const auto &d = sw.delorean;
        std::printf("%-11s %10.2f  ", d.benchmark.c_str(),
                    d.avg_explorers);
        const int bars = int(d.avg_explorers * 10.0);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf(
        "\npaper highlights: bwaves lowest (<1); zeusmp/cactusADM/"
        "GemsFDTD/lbm up to four;\nmcf/gromacs/leslie3d/sjeng/astar "
        "relatively many (few long reuses); calculix low with a single\n"
        "deep region (its long reuses come from one detailed region)\n");
    return 0;
}
