/**
 * @file
 * Figure 12: DeLorean's CPI error with and without an LLC stride
 * prefetcher (8 streams), sorted per the paper's presentation. The
 * prefetcher under DeLorean is driven by *predicted* misses and
 * prefetches to predicted-present lines are nullified (§6.3.2).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);

    const auto base = bench::runSweep(opt, 8 * MiB, false);
    const auto pref = bench::runSweep(opt, 8 * MiB, true, "pf");

    std::vector<double> err_base, err_pref;
    for (const auto &sw : base) {
        err_base.push_back(sampling::relativeErrorPct(
            sw.smarts.cpi, sw.delorean.cpi));
    }
    for (const auto &sw : pref) {
        err_pref.push_back(sampling::relativeErrorPct(
            sw.smarts.cpi, sw.delorean.cpi));
    }
    std::sort(err_base.begin(), err_base.end());
    std::sort(err_pref.begin(), err_pref.end());

    bench::printHeading(
        "DeLorean CPI error with and without LLC stride prefetching "
        "(sorted)",
        "Figure 12");
    std::printf("%-6s %14s %14s\n", "rank", "w/o pref (%)",
                "w/ pref (%)");
    for (std::size_t i = 0; i < err_base.size(); ++i) {
        std::printf("%-6zu %14.2f %14.2f\n", i + 1, err_base[i],
                    err_pref[i]);
    }

    const double avg_base = sampling::mean(err_base);
    const double avg_pref = sampling::mean(err_pref);
    std::printf("\naverage error: %.2f%% without vs %.2f%% with "
                "prefetching\n",
                avg_base, avg_pref);
    std::printf("paper: DeLorean is slightly MORE accurate with "
                "prefetching (fewer misses left to predict)\n");
    return 0;
}
