/**
 * @file
 * Figure 14 + §6.4.2: CPI as a function of LLC size for cactusADM,
 * leslie3d and lbm, with all DeLorean points produced from ONE shared
 * warm-up (a single Scout + Explorer set feeding 10 parallel
 * Analysts). Also reports the amortization economics the paper quotes:
 * warm-up : detailed-simulation cost ~235x, marginal cost < 1.05x for
 * 10 parallel Analysts.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common.hh"
#include "core/dse.hh"
#include "core/parallel.hh"
#include "statmodel/working_set.hh"

namespace
{

/** Same DsePoints from the serial and parallel executors, or abort. */
void
checkIdentical(const delorean::core::DesignSpaceExplorer::Output &serial,
               const delorean::core::DesignSpaceExplorer::Output &parallel)
{
    bool ok = serial.points.size() == parallel.points.size();
    for (std::size_t i = 0; ok && i < serial.points.size(); ++i) {
        // MethodResult::operator== is defaulted: every statistic,
        // per-region record and cost bucket, doubles compared exactly.
        ok = serial.points[i].llc_size == parallel.points[i].llc_size &&
             serial.points[i].result == parallel.points[i].result;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "[fig14] FATAL: parallel sweep diverged from the "
                     "serial sweep\n");
        std::exit(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace delorean;
    using Clock = std::chrono::steady_clock;
    auto opt = bench::Options::parse(argc, argv);
    if (opt.spacing == 5'000'000)
        opt.spacing = 25'000'000;
    if (opt.benchmarks.empty())
        opt.benchmarks = {"cactusADM", "leslie3d", "lbm"};

    const auto sizes = statmodel::paperLlcSizes();
    const unsigned n_threads = core::ThreadPool::defaultThreads();

    bench::printHeading(
        "Design-space exploration: CPI vs LLC size from one warm-up",
        "Figure 14");

    for (const auto &name : opt.benchmarkList()) {
        std::fprintf(stderr, "[fig14] %s...\n", name.c_str());
        bench::guarded(name, [&] {
        auto trace = bench::makeTraceOrDie(name);
        auto cfg = opt.config(1 * MiB);

        // The reference curve is memoized in the persistent result
        // cache; the DSE sweeps below stay live on purpose — this
        // figure *measures* their serial-vs-parallel wall-clock.
        const auto ref = bench::cachedMultiSizeReference(
            name, *trace, cfg.schedule, cfg.hier, sizes, cfg.sim,
            opt.use_cache);

        // The same sweep serially and with one Analyst per host
        // thread: identical points, different wall-clock.
        cfg.host_threads = 1;
        const auto t0 = Clock::now();
        const auto dse =
            core::DesignSpaceExplorer::run(*trace, cfg, sizes);
        const auto t1 = Clock::now();
        cfg.host_threads = n_threads;
        const auto dse_mt =
            core::DesignSpaceExplorer::run(*trace, cfg, sizes);
        const auto t2 = Clock::now();
        checkIdentical(dse, dse_mt);

        const double serial_s =
            std::chrono::duration<double>(t1 - t0).count();
        const double parallel_s =
            std::chrono::duration<double>(t2 - t1).count();

        std::printf("\n%s (CPI)\n", name.c_str());
        std::printf("%10s %12s %12s %9s\n", "size", "SMARTS",
                    "DeLorean", "err%");
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            std::printf("%10s %12.3f %12.3f %9.1f\n",
                        bench::mib(sizes[i]).c_str(), ref.cpi[i],
                        dse.points[i].result.cpi(),
                        sampling::relativeErrorPct(
                            ref.cpi[i], dse.points[i].result.cpi()));
        }
        std::printf("amortization: warm/detailed = %.0fx "
                    "(paper: ~235x), marginal cost for %zu Analysts = "
                    "%.3fx (paper: <1.05x for 10), wall %.1fs\n",
                    dse.cost.warm_to_detailed_ratio, sizes.size(),
                    dse.cost.marginal_factor, dse.cost.wall_seconds);
        std::printf("host execution: serial %.2fs, %u threads %.2fs, "
                    "speedup %.2fx (points bit-identical)\n",
                    serial_s, n_threads,
                    parallel_s, parallel_s > 0.0
                        ? serial_s / parallel_s : 0.0);
        });
    }

    std::printf("\npaper: all 10 points obtained from the same warm-up "
                "in a parallel simulation run; DeLorean tracks the "
                "reference performance curves.\n");
    return 0;
}
