/**
 * @file
 * Figure 14 + §6.4.2: CPI as a function of LLC size for cactusADM,
 * leslie3d and lbm, with all DeLorean points produced from ONE shared
 * warm-up (a single Scout + Explorer set feeding 10 parallel
 * Analysts). Also reports the amortization economics the paper quotes:
 * warm-up : detailed-simulation cost ~235x, marginal cost < 1.05x for
 * 10 parallel Analysts.
 */

#include <cstdio>

#include "common.hh"
#include "core/dse.hh"
#include "statmodel/working_set.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    auto opt = bench::Options::parse(argc, argv);
    if (opt.spacing == 5'000'000)
        opt.spacing = 25'000'000;
    if (opt.benchmarks.empty())
        opt.benchmarks = {"cactusADM", "leslie3d", "lbm"};

    const auto sizes = statmodel::paperLlcSizes();

    bench::printHeading(
        "Design-space exploration: CPI vs LLC size from one warm-up",
        "Figure 14");

    for (const auto &name : opt.benchmarkList()) {
        std::fprintf(stderr, "[fig14] %s...\n", name.c_str());
        auto trace = workload::makeSpecTrace(name);
        const auto cfg = opt.config(1 * MiB);

        const auto ref = bench::multiSizeReference(
            *trace, cfg.schedule, cfg.hier, sizes, cfg.sim);
        const auto dse =
            core::DesignSpaceExplorer::run(*trace, cfg, sizes);

        std::printf("\n%s (CPI)\n", name.c_str());
        std::printf("%10s %12s %12s %9s\n", "size", "SMARTS",
                    "DeLorean", "err%");
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            std::printf("%10s %12.3f %12.3f %9.1f\n",
                        bench::mib(sizes[i]).c_str(), ref.cpi[i],
                        dse.points[i].result.cpi(),
                        sampling::relativeErrorPct(
                            ref.cpi[i], dse.points[i].result.cpi()));
        }
        std::printf("amortization: warm/detailed = %.0fx "
                    "(paper: ~235x), marginal cost for %zu Analysts = "
                    "%.3fx (paper: <1.05x for 10), wall %.1fs\n",
                    dse.cost.warm_to_detailed_ratio, sizes.size(),
                    dse.cost.marginal_factor, dse.cost.wall_seconds);
    }

    std::printf("\npaper: all 10 points obtained from the same warm-up "
                "in a parallel simulation run; DeLorean tracks the "
                "reference performance curves.\n");
    return 0;
}
