/**
 * @file
 * Figure 11: speed/accuracy trade-off for an 8 MiB LLC as a function of
 * the vicinity sampling density (1 per 10k / 100k / 1M memory
 * instructions). Paper: 126 MIPS at 3.5% error with 1/100k; 71.3 MIPS
 * at 2.2% with 1/10k.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);

    // SMARTS reference comes from the shared sweep (cached).
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading(
        "Speed vs accuracy across vicinity sampling densities",
        "Figure 11");
    std::printf("%-12s %12s %12s %14s\n", "density", "avg MIPS",
                "avg err%", "avg samples");

    for (const std::uint64_t period :
         {10'000ull, 100'000ull, 1'000'000ull}) {
        double sum_mips = 0, sum_err = 0, sum_samples = 0;
        std::size_t i = 0;
        for (const auto &name : opt.benchmarkList()) {
            if (period == 100'000) {
                // The default density is exactly the shared sweep.
                sum_mips += sweeps[i].delorean.mips;
                sum_err += sampling::relativeErrorPct(
                    sweeps[i].smarts.cpi, sweeps[i].delorean.cpi);
                sum_samples += double(sweeps[i].delorean.reuse_samples);
                ++i;
                continue;
            }
            auto cfg = opt.config(8 * MiB);
            cfg.paper_vicinity_period = period;
            sampling::MethodResult d;
            bench::guarded(name, [&] {
                auto trace = bench::makeTraceOrDie(name);
                d = core::DeloreanMethod::run(*trace, cfg);
            });
            sum_mips += d.mips;
            sum_err += sampling::relativeErrorPct(sweeps[i].smarts.cpi,
                                                  d.cpi());
            sum_samples += double(d.reuse_samples);
            ++i;
        }
        const double n = double(i);
        std::printf("1/%-10llu %12.1f %12.2f %14.0f\n",
                    (unsigned long long)period, sum_mips / n,
                    sum_err / n, sum_samples / n);
    }
    std::printf("\npaper: 1/100k -> 126 MIPS at 3.5%% error; "
                "1/10k -> 71.3 MIPS at 2.2%% error (denser vicinity = "
                "more accurate, slower)\n");
    return 0;
}
