/**
 * @file
 * Figure 11: speed/accuracy trade-off for an 8 MiB LLC as a function of
 * the vicinity sampling density (1 per 10k / 100k / 1M memory
 * instructions). Paper: 126 MIPS at 3.5% error with 1/100k; 71.3 MIPS
 * at 2.2% with 1/10k.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);

    // SMARTS reference comes from the shared sweep (cached).
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    // The off-default densities run as their own batch cells: the
    // vicinity period is part of the content key, so each density is
    // cached independently of the shared sweep.
    auto cfg10k = opt.config(8 * MiB);
    cfg10k.paper_vicinity_period = 10'000;
    auto cfg1m = opt.config(8 * MiB);
    cfg1m.paper_vicinity_period = 1'000'000;
    batch::BatchOptions bopt;
    bopt.use_cache = opt.use_cache;
    bopt.verbose = true;
    const auto report = bench::runPlanOrDie(
        opt.benchmarkList(), {{"d10k", cfg10k}, {"d1m", cfg1m}},
        {{"sched", cfg10k.schedule}}, {"delorean"}, bopt);

    bench::printHeading(
        "Speed vs accuracy across vicinity sampling densities",
        "Figure 11");
    std::printf("%-12s %12s %12s %14s\n", "density", "avg MIPS",
                "avg err%", "avg samples");

    const std::size_t n_bench = opt.benchmarkList().size();
    for (const std::uint64_t period :
         {10'000ull, 100'000ull, 1'000'000ull}) {
        double sum_mips = 0, sum_err = 0, sum_samples = 0;
        for (std::size_t i = 0; i < n_bench; ++i) {
            if (period == 100'000) {
                // The default density is exactly the shared sweep.
                sum_mips += sweeps[i].delorean.mips;
                sum_err += sampling::relativeErrorPct(
                    sweeps[i].smarts.cpi, sweeps[i].delorean.cpi);
                sum_samples += double(sweeps[i].delorean.reuse_samples);
                continue;
            }
            // Plan order: per workload, config d10k then d1m.
            const auto &d =
                report.outcomes[2 * i + (period == 10'000 ? 0 : 1)]
                    .result;
            sum_mips += d.mips;
            sum_err += sampling::relativeErrorPct(sweeps[i].smarts.cpi,
                                                  d.cpi());
            sum_samples += double(d.reuse_samples);
        }
        const double n = double(n_bench);
        std::printf("1/%-10llu %12.1f %12.2f %14.0f\n",
                    (unsigned long long)period, sum_mips / n,
                    sum_err / n, sum_samples / n);
    }
    std::printf("\npaper: 1/100k -> 126 MIPS at 3.5%% error; "
                "1/10k -> 71.3 MIPS at 2.2%% error (denser vicinity = "
                "more accurate, slower)\n");
    return 0;
}
