#include "perf_harness.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "base/json.hh"
#include "common.hh"
#include "core/delorean.hh"
#include "workload/trace_registry.hh"

namespace delorean::bench
{

namespace
{

using profiling::HotPhase;
using profiling::hot_phase_count;
using profiling::hotPhaseName;

core::DeloreanConfig
pinnedConfig(const PerfOptions &opt)
{
    core::DeloreanConfig cfg;
    cfg.schedule.spacing = opt.spacing;
    cfg.schedule.num_regions = opt.regions;
    cfg.hier.llc.size = opt.llc_size;
    cfg.host_threads = opt.host_threads;
    return cfg;
}

/** The co-scheduled LLC sweep: group_size doublings from llc_size. */
std::vector<core::DeloreanConfig>
groupConfigs(const PerfOptions &opt)
{
    std::vector<core::DeloreanConfig> configs;
    for (unsigned g = 0; g < std::max(1u, opt.group_size); ++g) {
        auto cfg = pinnedConfig(opt);
        cfg.hier.llc.size = opt.llc_size << g;
        configs.push_back(cfg);
    }
    return configs;
}

void
putPhase(std::ostringstream &os, const profiling::PhaseTimings &t,
         std::size_t p, bool last)
{
    const auto phase = HotPhase(p);
    os << "      \"" << hotPhaseName(phase) << "\": {\"ns\": "
       << t.ns[p] << ", \"calls\": " << t.calls[p]
       << ", \"items\": " << t.items[p]
       << ", \"items_per_sec\": " << t.itemsPerSecond(phase) << "}"
       << (last ? "" : ",") << "\n";
}

/** Indent every line of an embedded JSON document by two spaces. */
std::string
indentJson(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    bool at_line_start = true;
    for (const char c : json) {
        if (at_line_start && c != '\n')
            out += "  ";
        at_line_start = c == '\n';
        out += c;
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
        out.pop_back();
    return out;
}

} // namespace

double
PerfMeasurement::replayInstsPerSec() const
{
    return phases.itemsPerSecond(HotPhase::ExplorerReplay);
}

double
PerfMeasurement::instsPerSec() const
{
    if (wall_seconds <= 0.0)
        return 0.0;
    return double(insts) / wall_seconds;
}

double
PerfMeasurement::trapsPerSec() const
{
    const auto p = std::size_t(HotPhase::ExplorerReplay);
    if (phases.ns[p] <= 0.0)
        return 0.0;
    return double(traps) * 1e9 / phases.ns[p];
}

std::string
PerfReport::buildDescription()
{
    std::ostringstream os;
#if defined(__clang__)
    os << "clang " << __clang_major__ << "." << __clang_minor__;
#elif defined(__GNUC__)
    os << "gcc " << __GNUC__ << "." << __GNUC_MINOR__;
#else
    os << "unknown-compiler";
#endif
#ifdef NDEBUG
    os << ", NDEBUG";
#else
    os << ", assertions";
#endif
    return os.str();
}

PerfReport
runPerfSuite(const PerfOptions &options)
{
    PerfReport report;
    report.options = options;
    const auto configs = groupConfigs(options);

    for (const auto &spec : options.workloads) {
        auto master = workload::makeTrace(spec);

        for (unsigned w = 0; w < options.warmups; ++w)
            (void)core::DeloreanMethod::runGroup(*master, configs);

        PerfMeasurement best;
        best.workload = spec;
        best.insts = configs[0].schedule.totalInstructions() *
                     configs.size();
        for (unsigned rep = 0; rep < std::max(1u, options.repeats);
             ++rep) {
            const double t0 = profiling::nowNs();
            const auto results =
                core::DeloreanMethod::runGroup(*master, configs);
            const double wall = (profiling::nowNs() - t0) / 1e9;

            // Aggregate the group: every cell's timers already carry
            // its even share of the co-scheduled decode, so the merge
            // is the true wall spent and items/ns is the honest batch
            // throughput.
            Counter traps = 0;
            profiling::PhaseTimings phases;
            for (const auto &result : results) {
                traps += result.traps;
                phases.merge(result.cost.measured());
            }
            std::fprintf(stderr,
                         "[perf] %s rep %u/%u: wall=%.3fs replay=%.1f "
                         "Minsts/s (%zu cells)\n",
                         spec.c_str(), rep + 1, options.repeats, wall,
                         phases.itemsPerSecond(
                             HotPhase::ExplorerReplay) /
                             1e6,
                         results.size());
            if (best.wall_seconds == 0.0 || wall < best.wall_seconds) {
                best.wall_seconds = wall;
                best.traps = traps;
                best.phases = phases;
            }
        }
        report.measurements.push_back(std::move(best));
    }
    return report;
}

std::string
writeBenchJson(const PerfReport &report, const std::string &path,
               const std::string &baseline_json)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n";
    os << "  \"schema\": \"delorean-bench-1\",\n";
    os << "  \"generated_by\": \"bench_report\",\n";
    os << "  \"build\": \"" << PerfReport::buildDescription() << "\",\n";
    os << "  \"config\": {\"spacing\": " << report.options.spacing
       << ", \"regions\": " << report.options.regions << ", \"llc\": \""
       << mib(report.options.llc_size) << "\", \"host_threads\": "
       << report.options.host_threads << ", \"repeats\": "
       << report.options.repeats << ", \"group_size\": "
       << std::max(1u, report.options.group_size) << "},\n";
    os << "  \"workloads\": {\n";
    for (std::size_t i = 0; i < report.measurements.size(); ++i) {
        const auto &m = report.measurements[i];
        // Workload specs can contain anything a path can.
        os << "    \"" << jsonEscape(m.workload) << "\": {\n";
        os << "      \"wall_seconds\": " << m.wall_seconds << ",\n";
        os << "      \"insts\": " << m.insts << ",\n";
        os << "      \"insts_per_sec\": " << m.instsPerSec() << ",\n";
        os << "      \"traps\": " << m.traps << ",\n";
        os << "      \"traps_per_sec\": " << m.trapsPerSec() << ",\n";
        os << "      \"phases\": {\n";
        // Re-indent the phase block by rendering through putPhase at
        // the same level and shifting two spaces.
        std::ostringstream phases;
        phases.precision(17);
        for (std::size_t p = 0; p < hot_phase_count; ++p)
            putPhase(phases, m.phases, p, p + 1 == hot_phase_count);
        os << indentJson(phases.str()) << "\n";
        os << "      }\n";
        os << "    }" << (i + 1 == report.measurements.size() ? "" : ",")
           << "\n";
    }
    os << "  }";
    if (!baseline_json.empty())
        os << ",\n  \"baseline\":\n" << indentJson(baseline_json);
    os << "\n}\n";

    const std::string text = os.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    out.close();
    if (out.fail())
        throw std::runtime_error("cannot write bench report '" + path +
                                 "'");
    return text;
}

double
replayInstsPerSecFromJson(const std::string &json,
                          const std::string &workload)
{
    // Tolerant extraction: find the workload object (as written, i.e.
    // escaped), then its explorer_replay block, then the insts_per_sec
    // number. The harness writes this shape itself; a mismatch reads
    // as 0. (Built with += rather than operator+ on the temporary:
    // GCC 12 -Werror=restrict false positive, PR 105651.)
    std::string needle = "\"";
    needle += jsonEscape(workload);
    needle += '"';
    const auto wpos = json.find(needle);
    if (wpos == std::string::npos)
        return 0.0;
    const auto rpos = json.find("\"explorer_replay\"", wpos);
    if (rpos == std::string::npos)
        return 0.0;
    const auto kpos = json.find("\"items_per_sec\":", rpos);
    if (kpos == std::string::npos)
        return 0.0;
    return std::strtod(json.c_str() + kpos + 16, nullptr);
}

} // namespace delorean::bench
