/**
 * @file
 * Table 1: the simulated processor architecture. Prints the library's
 * default configuration next to the paper's published values so any
 * drift is immediately visible.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto cfg = opt.config(8 * MiB);

    bench::printHeading("Simulated processor architecture", "Table 1");

    const auto &core = cfg.sim.core;
    const auto &bp = cfg.sim.bpred;
    const auto &h = cfg.hier;

    std::printf("%-28s %-22s %s\n", "parameter", "this library", "paper");
    std::printf("%-28s %-22u %s\n", "ROB entries", core.rob, "192");
    std::printf("%-28s %-22u %s\n", "IQ entries", core.iq, "64");
    std::printf("%-28s %-22u %s\n", "SQ entries", core.sq, "64");
    std::printf("%-28s %-22u %s\n", "LQ entries", core.lq, "64");
    std::printf("%-28s %-22u %s\n", "issue width", core.width, "8");
    std::printf("%-28s %-22u %s\n", "local predictor entries",
                bp.local_entries, "2k x 2bit");
    std::printf("%-28s %-22u %s\n", "global predictor entries",
                bp.global_entries, "8k x 2bit");
    std::printf("%-28s %-22u %s\n", "choice predictor entries",
                bp.choice_entries, "8k x 2bit");
    std::printf("%-28s %-22u %s\n", "BTB entries", bp.btb_entries, "4k");
    std::printf("%-28s %-22s %s\n", "L1-I",
                (bench::mib(h.l1i.size) + " " +
                 std::to_string(h.l1i.assoc) + "-way lru")
                    .c_str(),
                "64KiB 2-way LRU 64B");
    std::printf("%-28s %-22s %s\n", "L1-D",
                (bench::mib(h.l1d.size) + " " +
                 std::to_string(h.l1d.assoc) + "-way lru")
                    .c_str(),
                "64KiB 2-way LRU 64B");
    std::printf("%-28s %-22s %s\n", "LLC",
                (bench::mib(h.llc.size) + " " +
                 std::to_string(h.llc.assoc) + "-way lru")
                    .c_str(),
                "1MiB-512MiB 8-way LRU");
    std::printf("%-28s %u/%u/%u %-12s %s\n", "MSHRs (L1I/L1D/LLC)",
                h.l1i.mshrs, h.l1d.mshrs, h.llc.mshrs, "",
                "4/8/20");
    std::printf("%-28s %-22llu %s\n", "cacheline bytes",
                (unsigned long long)line_size, "64");
    return 0;
}
