/**
 * @file
 * Figure 6: number of reuse distances collected by CoolSim (RSW)
 * versus DeLorean (DSW) — the 30x reduction headline.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading("Collected reuse distances (RSW vs DSW)",
                        "Figure 6");
    std::printf("%-11s %12s %12s %10s\n", "benchmark", "CoolSim",
                "DeLorean", "reduction");

    std::uint64_t sum_c = 0, sum_d = 0;
    for (const auto &sw : sweeps) {
        const double red =
            double(sw.coolsim.reuse_samples) /
            double(std::max<std::uint64_t>(1, sw.delorean.reuse_samples));
        std::printf("%-11s %12llu %12llu %9.1fx\n",
                    sw.smarts.benchmark.c_str(),
                    (unsigned long long)sw.coolsim.reuse_samples,
                    (unsigned long long)sw.delorean.reuse_samples, red);
        sum_c += sw.coolsim.reuse_samples;
        sum_d += sw.delorean.reuse_samples;
    }
    const double n = double(sweeps.size());
    std::printf("%-11s %12.0f %12.0f %9.1fx\n", "average",
                double(sum_c) / n, double(sum_d) / n,
                double(sum_c) / double(std::max<std::uint64_t>(1, sum_d)));
    std::printf("\npaper: CoolSim ~340k vs DeLorean ~11k per benchmark "
                "(30x reduction; up to 6,800x)\n");
    return 0;
}
