#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/units.hh"
#include "workload/trace_registry.hh"

namespace delorean::bench
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

Options
Options::parse(int argc, char **argv)
{
    Options opt;

    if (const char *env = std::getenv("DELOREAN_SPACING"))
        opt.spacing = InstCount(std::atoll(env));
    if (const char *env = std::getenv("DELOREAN_QUICK")) {
        if (std::strcmp(env, "0") != 0)
            opt.spacing = 1'000'000;
    }
    if (const char *env = std::getenv("DELOREAN_BENCH"))
        opt.benchmarks = splitCsv(env);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--spacing") {
            opt.spacing = InstCount(std::atoll(next()));
        } else if (arg == "--regions") {
            opt.regions = unsigned(std::atoi(next()));
        } else if (arg == "--bench") {
            opt.benchmarks = splitCsv(next());
        } else if (arg == "--quick") {
            opt.spacing = 1'000'000;
        } else if (arg == "--no-cache") {
            opt.use_cache = false;
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opt;
}

sampling::RegionSchedule
Options::schedule() const
{
    sampling::RegionSchedule s;
    s.num_regions = regions;
    s.spacing = spacing;
    s.validate();
    return s;
}

core::DeloreanConfig
Options::config(std::uint64_t llc_size, bool prefetch) const
{
    core::DeloreanConfig c;
    c.schedule = schedule();
    c.hier.llc.size = llc_size;
    c.sim.prefetch = prefetch;
    return c;
}

const std::vector<std::string> &
Options::benchmarkList() const
{
    if (!benchmarks.empty())
        return benchmarks;
    return workload::specBenchmarkNames();
}

RunSummary
RunSummary::from(const sampling::MethodResult &r)
{
    RunSummary s;
    s.benchmark = r.benchmark;
    s.method = r.method;
    s.cpi = r.cpi();
    s.mpki = r.mpki();
    s.mips = r.mips;
    s.wall_seconds = r.wall_seconds;
    s.reuse_samples = r.reuse_samples;
    s.traps = r.traps;
    s.false_positives = r.false_positives;
    s.keys_total = r.keys_total;
    s.keys_explored = r.keys_explored;
    s.keys_unresolved = r.keys_unresolved;
    s.avg_explorers = r.avg_explorers;
    for (int k = 0; k < 4; ++k)
        s.keys_by_explorer[k] = r.keys_by_explorer[std::size_t(k)];
    return s;
}

namespace
{

constexpr int cache_version = 3;

std::string
cacheFile(const Options &opt, std::uint64_t llc_size, bool prefetch,
          const std::string &tag)
{
    std::ostringstream os;
    os << "delorean_sweep_v" << cache_version << "_llc"
       << llc_size / MiB << "m_sp" << opt.spacing << "_r" << opt.regions
       << (prefetch ? "_pref" : "") << (tag.empty() ? "" : "_" + tag)
       << ".tsv";
    return os.str();
}

void
writeSummary(std::ostream &os, const RunSummary &s)
{
    os << s.benchmark << '\t' << s.method << '\t' << s.cpi << '\t'
       << s.mpki << '\t' << s.mips << '\t' << s.wall_seconds << '\t'
       << s.reuse_samples << '\t' << s.traps << '\t'
       << s.false_positives << '\t' << s.keys_total << '\t'
       << s.keys_explored << '\t' << s.keys_unresolved << '\t'
       << s.avg_explorers;
    for (int k = 0; k < 4; ++k)
        os << '\t' << s.keys_by_explorer[k];
    os << '\n';
}

bool
readSummary(std::istream &is, RunSummary &s)
{
    std::string line;
    if (!std::getline(is, line) || line.empty())
        return false;
    std::istringstream ls(line);
    ls >> s.benchmark >> s.method >> s.cpi >> s.mpki >> s.mips >>
        s.wall_seconds >> s.reuse_samples >> s.traps >>
        s.false_positives >> s.keys_total >> s.keys_explored >>
        s.keys_unresolved >> s.avg_explorers;
    for (int k = 0; k < 4; ++k)
        ls >> s.keys_by_explorer[k];
    return !ls.fail();
}

std::vector<BenchmarkSweep>
loadCache(const std::string &file,
          const std::vector<std::string> &benchmarks)
{
    std::ifstream is(file);
    if (!is)
        return {};
    std::vector<BenchmarkSweep> sweeps;
    for (const auto &name : benchmarks) {
        BenchmarkSweep sw;
        if (!readSummary(is, sw.smarts) ||
            !readSummary(is, sw.coolsim) ||
            !readSummary(is, sw.delorean))
            return {};
        if (sw.smarts.benchmark != name)
            return {};
        sweeps.push_back(sw);
    }
    return sweeps;
}

} // namespace

std::unique_ptr<workload::TraceSource>
makeTraceOrDie(const std::string &spec)
{
    try {
        return workload::makeTrace(spec);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return nullptr;
}

void
guarded(const std::string &spec, const std::function<void()> &body)
{
    try {
        body();
    } catch (const std::exception &e) {
        fatal("%s: %s", spec.c_str(), e.what());
    }
}

std::vector<BenchmarkSweep>
runSweep(const Options &opt, std::uint64_t llc_size, bool prefetch,
         const std::string &tag)
{
    const std::string file = cacheFile(opt, llc_size, prefetch, tag);
    const auto &benchmarks = opt.benchmarkList();

    // Synthetic workloads are immutable functions of their spec, so
    // cache rows keyed by spec stay valid forever. A file:/champsim:
    // path can be re-recorded with different content; never trust or
    // write cache rows for those.
    bool cacheable = true;
    for (const auto &spec : benchmarks) {
        const auto colon = spec.find(':');
        if (colon != std::string::npos &&
            spec.compare(0, colon, "spec") != 0)
            cacheable = false;
    }
    const bool use_cache = opt.use_cache && cacheable;

    if (use_cache) {
        auto cached = loadCache(file, benchmarks);
        if (!cached.empty()) {
            std::fprintf(stderr, "[sweep] loaded %zu benchmarks from %s\n",
                         cached.size(), file.c_str());
            return cached;
        }
    }

    const auto cfg = opt.config(llc_size, prefetch);
    std::vector<BenchmarkSweep> sweeps;
    for (const auto &spec : benchmarks) {
        std::fprintf(stderr, "[sweep] %s (llc=%s%s)...\n", spec.c_str(),
                     mib(llc_size).c_str(), prefetch ? ", prefetch" : "");
        // Specs can be bare SPEC names, spec:, file:, or champsim:
        // (workload/trace_registry.hh).
        auto trace = makeTraceOrDie(spec);
        BenchmarkSweep sw;
        try {
            sw.smarts = RunSummary::from(
                sampling::SmartsMethod::run(*trace, cfg));
            sw.coolsim = RunSummary::from(
                sampling::CoolSimMethod::run(*trace, cfg));
            sw.delorean = RunSummary::from(
                core::DeloreanMethod::run(*trace, cfg));
        } catch (const std::exception &e) {
            // E.g. a recorded trace shorter than the schedule.
            fatal("%s: %s", spec.c_str(), e.what());
        }
        // Rows (and figure output) are keyed by the *spec*, not the
        // trace's display name: a recording of bzip2 and synthetic
        // bzip2 are different workloads and must not share cache rows.
        // Specs with whitespace defeat the TSV cache format; the
        // loader then fails to parse and the sweep recomputes.
        sw.smarts.benchmark = spec;
        sw.coolsim.benchmark = spec;
        sw.delorean.benchmark = spec;
        sweeps.push_back(sw);
    }

    if (use_cache) {
        std::ofstream os(file);
        for (const auto &sw : sweeps) {
            writeSummary(os, sw.smarts);
            writeSummary(os, sw.coolsim);
            writeSummary(os, sw.delorean);
        }
    }
    return sweeps;
}

// GCC 12 at -O3 emits a -Wfree-nonheap-object false positive for the
// inlined vector destructors here (GCC PR 106297); the allocations are
// ordinary heap vectors.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

MultiSizeReference
multiSizeReference(const workload::TraceSource &master,
                   const sampling::RegionSchedule &schedule,
                   const cache::HierarchyConfig &base,
                   const std::vector<std::uint64_t> &sizes,
                   const cpu::DetailedSimConfig &sim_config)
{
    MultiSizeReference out;
    out.sizes = sizes;
    out.mpki.assign(sizes.size(), 0.0);
    out.cpi.assign(sizes.size(), 0.0);

    cache::Cache l1i(base.l1i);
    cache::Cache l1d(base.l1d);
    std::vector<cache::Cache> llcs;
    for (const auto size : sizes)
        llcs.emplace_back(base.withLlcSize(size).llc);

    std::vector<double> cycles(sizes.size(), 0.0);
    std::vector<Counter> misses(sizes.size(), 0);
    InstCount detailed_insts = 0;

    auto trace = master.clone();
    Addr last_fetch = invalid_addr;

    for (unsigned r = 0; r < schedule.num_regions; ++r) {
        // Functional warming up to the region, all LLCs in lockstep.
        const InstCount until = schedule.warmingStart(r);
        while (trace->position() < until) {
            const auto inst = trace->next();
            const Addr fl = lineOf(inst.pc);
            if (fl != last_fetch) {
                if (!l1i.access(fl, false).hit) {
                    for (auto &llc : llcs)
                        llc.access(fl, false);
                }
                last_fetch = fl;
            }
            if (!inst.isMem())
                continue;
            const Addr line = inst.line();
            const auto l1 = l1d.access(line, inst.isStore());
            if (!l1.hit) {
                for (auto &llc : llcs) {
                    if (l1.writeback)
                        llc.insert(l1.victim_line, true);
                    llc.access(line, false);
                }
            }
        }

        // Per size: snapshot the warmed state and run the timed region.
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            cache::CacheHierarchy hier(base.withLlcSize(sizes[i]), l1i,
                                       l1d, llcs[i]);
            cpu::DetailedSimulator sim(hier, sim_config);
            auto region = trace->clone();
            sim.warmRegion(*region, schedule.detailed_warming);
            const auto stats =
                sim.simulate(*region, schedule.region_len, nullptr);
            cycles[i] += stats.cycles;
            misses[i] += stats.llcMisses();
        }
        detailed_insts += schedule.region_len;
        // The master pass keeps walking through the region window.
    }

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        out.cpi[i] = cycles[i] / double(detailed_insts);
        out.mpki[i] =
            double(misses[i]) * 1000.0 / double(detailed_insts);
    }
    return out;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void
printHeading(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s of Nikoleris et al., MICRO 2019)\n",
                paper_ref.c_str());
    std::printf("==============================================================\n");
}

std::string
mib(std::uint64_t bytes)
{
    std::ostringstream os;
    if (bytes < MiB) {
        os << bytes / KiB << "KiB";
        return os.str();
    }
    const double v = double(bytes) / double(MiB);
    if (v == double(std::uint64_t(v)))
        os << std::uint64_t(v) << "MiB";
    else
        os << v << "MiB";
    return os.str();
}

} // namespace delorean::bench
