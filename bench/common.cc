#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

#include "base/logging.hh"
#include "base/units.hh"
#include "batch/error.hh"
#include "batch/plan.hh"
#include "core/dse.hh"
#include "workload/trace_registry.hh"

namespace delorean::bench
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

// Strict parse (batch/plan.hh) with a CLI/env-flavoured fatal():
// atoll's silent junk-to-zero would run a different schedule than
// asked for.
std::uint64_t
parseCountArg(const char *text, const char *what)
{
    try {
        return batch::parseCount(text);
    } catch (const batch::BatchError &e) {
        fatal("%s: %s", what, e.what());
    }
    return 0;
}

unsigned
parseU32Arg(const char *text, const char *what)
{
    try {
        return batch::parseU32(text);
    } catch (const batch::BatchError &e) {
        fatal("%s: %s", what, e.what());
    }
    return 0;
}

} // namespace

Options
Options::parse(int argc, char **argv)
{
    Options opt;

    if (const char *env = std::getenv("DELOREAN_SPACING"))
        opt.spacing = parseCountArg(env, "DELOREAN_SPACING");
    if (const char *env = std::getenv("DELOREAN_QUICK")) {
        if (std::strcmp(env, "0") != 0)
            opt.spacing = 1'000'000;
    }
    if (const char *env = std::getenv("DELOREAN_BENCH"))
        opt.benchmarks = splitCsv(env);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--spacing") {
            opt.spacing = parseCountArg(next(), "--spacing");
        } else if (arg == "--regions") {
            opt.regions = parseU32Arg(next(), "--regions");
        } else if (arg == "--bench") {
            opt.benchmarks = splitCsv(next());
        } else if (arg == "--quick") {
            opt.spacing = 1'000'000;
        } else if (arg == "--no-cache") {
            opt.use_cache = false;
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opt;
}

sampling::RegionSchedule
Options::schedule() const
{
    sampling::RegionSchedule s;
    s.num_regions = regions;
    s.spacing = spacing;
    s.validate();
    return s;
}

core::DeloreanConfig
Options::config(std::uint64_t llc_size, bool prefetch) const
{
    core::DeloreanConfig c;
    c.schedule = schedule();
    c.hier.llc.size = llc_size;
    c.sim.prefetch = prefetch;
    return c;
}

const std::vector<std::string> &
Options::benchmarkList() const
{
    if (!benchmarks.empty())
        return benchmarks;
    return workload::specBenchmarkNames();
}

RunSummary
RunSummary::from(const sampling::MethodResult &r)
{
    RunSummary s;
    s.benchmark = r.benchmark;
    s.method = r.method;
    s.cpi = r.cpi();
    s.mpki = r.mpki();
    s.mips = r.mips;
    s.wall_seconds = r.wall_seconds;
    s.reuse_samples = r.reuse_samples;
    s.traps = r.traps;
    s.false_positives = r.false_positives;
    s.keys_total = r.keys_total;
    s.keys_explored = r.keys_explored;
    s.keys_unresolved = r.keys_unresolved;
    s.avg_explorers = r.avg_explorers;
    for (int k = 0; k < 4; ++k)
        s.keys_by_explorer[k] = r.keys_by_explorer[std::size_t(k)];
    return s;
}

std::unique_ptr<workload::TraceSource>
makeTraceOrDie(const std::string &spec)
{
    try {
        return workload::makeTrace(spec);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return nullptr;
}

void
guarded(const std::string &spec, const std::function<void()> &body)
{
    try {
        body();
    } catch (const std::exception &e) {
        fatal("%s: %s", spec.c_str(), e.what());
    }
}

batch::BatchReport
runPlanOrDie(const std::vector<std::string> &workloads,
             const std::vector<batch::NamedConfig> &configs,
             const std::vector<batch::NamedSchedule> &schedules,
             const std::vector<std::string> &methods,
             const batch::BatchOptions &opt)
{
    try {
        // Plan construction digests file-backed workloads and can
        // throw just like execution; both must become fatal().
        const batch::BatchPlan plan(workloads, configs, schedules,
                                    methods);
        return batch::BatchRunner::run(plan, opt);
    } catch (const std::exception &e) {
        // E.g. a recorded trace shorter than the schedule (the runner
        // tags the message with the failing cell's workload).
        fatal("%s", e.what());
    }
    return {};
}

std::vector<BenchmarkSweep>
runSweep(const Options &opt, std::uint64_t llc_size, bool prefetch,
         const std::string &tag)
{
    const auto &benchmarks = opt.benchmarkList();
    const auto cfg = opt.config(llc_size, prefetch);

    std::fprintf(stderr, "[sweep] %zu benchmarks x 3 methods (llc=%s%s)\n",
                 benchmarks.size(), mib(llc_size).c_str(),
                 prefetch ? ", prefetch" : "");

    // One cell per (workload, method); content keys make the cache
    // safe for every spec kind — file:/champsim: workloads are keyed
    // by file content, so re-recordings can never serve stale rows
    // (docs/batch.md).
    batch::BatchOptions bopt;
    bopt.use_cache = opt.use_cache;
    bopt.verbose = true;
    const auto report = runPlanOrDie(
        benchmarks, {{tag.empty() ? "sweep" : tag, cfg}},
        {{"sched", cfg.schedule}}, {"smarts", "coolsim", "delorean"},
        bopt);

    // Plan order is workloads-major with methods innermost, so each
    // benchmark owns three consecutive outcomes.
    std::vector<BenchmarkSweep> sweeps;
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        BenchmarkSweep sw;
        sw.smarts = RunSummary::from(report.outcomes[3 * i + 0].result);
        sw.coolsim = RunSummary::from(report.outcomes[3 * i + 1].result);
        sw.delorean = RunSummary::from(report.outcomes[3 * i + 2].result);
        // Figure output is keyed by the *spec*, not the trace's
        // display name: a recording of bzip2 and synthetic bzip2 are
        // different workloads and must not share rows.
        sw.smarts.benchmark = benchmarks[i];
        sw.coolsim.benchmark = benchmarks[i];
        sw.delorean.benchmark = benchmarks[i];
        sweeps.push_back(sw);
    }
    return sweeps;
}

// GCC 12 at -O3 emits a -Wfree-nonheap-object false positive for the
// inlined vector destructors here (GCC PR 106297); the allocations are
// ordinary heap vectors.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

MultiSizeReference
multiSizeReference(const workload::TraceSource &master,
                   const sampling::RegionSchedule &schedule,
                   const cache::HierarchyConfig &base,
                   const std::vector<std::uint64_t> &sizes,
                   const cpu::DetailedSimConfig &sim_config)
{
    MultiSizeReference out;
    out.sizes = sizes;
    out.mpki.assign(sizes.size(), 0.0);
    out.cpi.assign(sizes.size(), 0.0);

    cache::Cache l1i(base.l1i);
    cache::Cache l1d(base.l1d);
    std::vector<cache::Cache> llcs;
    for (const auto size : sizes)
        llcs.emplace_back(base.withLlcSize(size).llc);

    std::vector<double> cycles(sizes.size(), 0.0);
    std::vector<Counter> misses(sizes.size(), 0);
    InstCount detailed_insts = 0;

    auto trace = master.clone();
    Addr last_fetch = invalid_addr;

    for (unsigned r = 0; r < schedule.num_regions; ++r) {
        // Functional warming up to the region, all LLCs in lockstep.
        const InstCount until = schedule.warmingStart(r);
        while (trace->position() < until) {
            const auto inst = trace->next();
            const Addr fl = lineOf(inst.pc);
            if (fl != last_fetch) {
                if (!l1i.access(fl, false).hit) {
                    for (auto &llc : llcs)
                        llc.access(fl, false);
                }
                last_fetch = fl;
            }
            if (!inst.isMem())
                continue;
            const Addr line = inst.line();
            const auto l1 = l1d.access(line, inst.isStore());
            if (!l1.hit) {
                for (auto &llc : llcs) {
                    if (l1.writeback)
                        llc.insert(l1.victim_line, true);
                    llc.access(line, false);
                }
            }
        }

        // Per size: snapshot the warmed state and run the timed region.
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            cache::CacheHierarchy hier(base.withLlcSize(sizes[i]), l1i,
                                       l1d, llcs[i]);
            cpu::DetailedSimulator sim(hier, sim_config);
            auto region = trace->clone();
            sim.warmRegion(*region, schedule.detailed_warming);
            const auto stats =
                sim.simulate(*region, schedule.region_len, nullptr);
            cycles[i] += stats.cycles;
            misses[i] += stats.llcMisses();
        }
        detailed_insts += schedule.region_len;
        // The master pass keeps walking through the region window.
    }

    for (std::size_t i = 0; i < sizes.size(); ++i) {
        out.cpi[i] = cycles[i] / double(detailed_insts);
        out.mpki[i] =
            double(misses[i]) * 1000.0 / double(detailed_insts);
    }
    return out;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

MultiSizeReference
cachedMultiSizeReference(const std::string &spec,
                         const workload::TraceSource &master,
                         const sampling::RegionSchedule &schedule,
                         const cache::HierarchyConfig &base,
                         const std::vector<std::uint64_t> &sizes,
                         const cpu::DetailedSimConfig &sim_config,
                         bool use_cache)
{
    std::unique_ptr<batch::ResultCache> cache;
    batch::CacheKey key;
    if (use_cache) {
        cache = std::make_unique<batch::ResultCache>();
        key = batch::KeyBuilder()
                  .workload(spec)
                  .str("msref")
                  .schedule(schedule)
                  .hierarchy(base)
                  .simConfig(sim_config)
                  .u64vec(sizes)
                  .key();
        if (const auto hit = cache->loadCurve(key)) {
            std::fprintf(stderr, "[msref] %s: cached\n", spec.c_str());
            MultiSizeReference ref;
            ref.sizes = hit->sizes;
            ref.mpki = hit->mpki;
            ref.cpi = hit->cpi;
            return ref;
        }
    }

    const auto ref =
        multiSizeReference(master, schedule, base, sizes, sim_config);
    if (cache) {
        batch::SizeCurve curve;
        curve.sizes = ref.sizes;
        curve.mpki = ref.mpki;
        curve.cpi = ref.cpi;
        cache->storeCurve(key, curve);
    }
    return ref;
}

std::vector<sampling::MethodResult>
cachedDsePoints(const std::string &spec,
                const workload::TraceSource &master,
                const core::DeloreanConfig &base,
                const std::vector<std::uint64_t> &sizes, bool use_cache)
{
    std::unique_ptr<batch::ResultCache> cache;
    std::vector<batch::CacheKey> keys;
    if (use_cache) {
        cache = std::make_unique<batch::ResultCache>();
        std::vector<sampling::MethodResult> cached;
        // One workload digest (file-backed specs read the whole file),
        // forked per point — the same prefix-sharing BatchPlan uses.
        batch::KeyBuilder prefix;
        prefix.workload(spec);
        for (const auto size : sizes) {
            keys.push_back(batch::KeyBuilder(prefix)
                               .str("dse-point")
                               .config(base)
                               .u64vec(sizes)
                               .u64(size)
                               .key());
            if (auto hit = cache->load(keys.back()))
                cached.push_back(std::move(*hit));
        }
        if (cached.size() == sizes.size()) {
            std::fprintf(stderr, "[dse] %s: %zu points cached\n",
                         spec.c_str(), cached.size());
            return cached;
        }
    }

    // Any miss reruns the whole sweep: all points share one warm-up.
    const auto out = core::DesignSpaceExplorer::run(master, base, sizes);
    std::vector<sampling::MethodResult> results;
    for (std::size_t i = 0; i < out.points.size(); ++i) {
        if (cache)
            cache->store(keys[i], out.points[i].result);
        results.push_back(out.points[i].result);
    }
    return results;
}

void
printHeading(const std::string &title, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(reproduces %s of Nikoleris et al., MICRO 2019)\n",
                paper_ref.c_str());
    std::printf("==============================================================\n");
}

std::string
mib(std::uint64_t bytes)
{
    std::ostringstream os;
    if (bytes < MiB) {
        os << bytes / KiB << "KiB";
        return os.str();
    }
    const double v = double(bytes) / double(MiB);
    if (v == double(std::uint64_t(v)))
        os << std::uint64_t(v) << "MiB";
    else
        os << v << "MiB";
    return os.str();
}

} // namespace delorean::bench
