/**
 * @file
 * Shared harness for the per-figure benchmark binaries.
 *
 * Every binary reproduces one table/figure of the paper and prints the
 * same rows/series the paper reports, plus `paper=` annotations with the
 * published values where available. Binaries accept:
 *
 *   --spacing N     region spacing in instructions (default 5,000,000)
 *   --regions N     number of detailed regions (default 10)
 *   --bench a,b,c   workload subset (default: all 24 SPEC-like
 *                   profiles); entries are trace specs
 *                   (workload/trace_registry.hh), so recorded traces
 *                   (file:PATH) and ChampSim traces (champsim:PATH)
 *                   drive any figure, e.g.
 *                   fig05_speed --bench bzip2,file:bzip2.dlt
 *   --quick         1,000,000-instruction spacing, for smoke runs
 *   --no-cache      ignore the persistent result cache
 *
 * Environment: DELOREAN_SPACING, DELOREAN_QUICK=1, DELOREAN_BENCH,
 * DELOREAN_CACHE_DIR.
 *
 * All expensive figure inputs run through the batch subsystem
 * (src/batch/, docs/batch.md): each (workload, method, config) cell is
 * memoized in the persistent result cache under a content key, so each
 * figure binary after the first loads instead of recomputing — across
 * processes, figures, and (via `tools/batch_run --shard`) hosts.
 * File-backed workloads (file:/champsim:) are keyed by file *content*,
 * so re-recording a path can never serve a stale result.
 */

#ifndef DELOREAN_BENCH_COMMON_HH
#define DELOREAN_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/runner.hh"
#include "core/delorean.hh"
#include "sampling/coolsim.hh"
#include "sampling/metrics.hh"
#include "sampling/smarts.hh"
#include "workload/spec_profiles.hh"

namespace delorean::bench
{

/** Command-line / environment options shared by all figure binaries. */
struct Options
{
    unsigned regions = 10;
    InstCount spacing = 5'000'000;
    std::vector<std::string> benchmarks; //!< empty = all 24
    bool use_cache = true;

    static Options parse(int argc, char **argv);

    sampling::RegionSchedule schedule() const;

    /** Full DeLorean config (usable as MethodConfig) for an LLC size. */
    core::DeloreanConfig config(std::uint64_t llc_size,
                                bool prefetch = false) const;

    const std::vector<std::string> &benchmarkList() const;
};

/** Summary of one (benchmark, method) run — the cacheable subset. */
struct RunSummary
{
    std::string benchmark;
    std::string method;
    double cpi = 0.0;
    double mpki = 0.0;
    double mips = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t reuse_samples = 0;
    std::uint64_t traps = 0;
    std::uint64_t false_positives = 0;
    std::uint64_t keys_total = 0;
    std::uint64_t keys_explored = 0;
    std::uint64_t keys_unresolved = 0;
    double avg_explorers = 0.0;
    std::uint64_t keys_by_explorer[4] = {0, 0, 0, 0};

    static RunSummary from(const sampling::MethodResult &r);
};

/** The three methods' summaries for one benchmark. */
struct BenchmarkSweep
{
    RunSummary smarts;
    RunSummary coolsim;
    RunSummary delorean;
};

/**
 * Run (or serve from the persistent result cache) the full
 * three-method sweep at @p llc_size for the configured benchmarks, via
 * the batch runner — one cell per (workload, method).
 *
 * @param tag names the config in progress output (e.g. "pf"); cache
 *        identity comes from the config's content, not the tag
 */
std::vector<BenchmarkSweep> runSweep(const Options &opt,
                                     std::uint64_t llc_size,
                                     bool prefetch = false,
                                     const std::string &tag = "");

/**
 * Expand and run a batch plan, converting any BatchError — thrown
 * during plan construction (e.g. an unreadable workload file being
 * digested for its cache key) or cell execution — into a fatal user
 * error: the per-figure analogue of makeTraceOrDie. Figure binaries
 * must never let an exception reach std::terminate.
 */
batch::BatchReport
runPlanOrDie(const std::vector<std::string> &workloads,
             const std::vector<batch::NamedConfig> &configs,
             const std::vector<batch::NamedSchedule> &schedules,
             const std::vector<std::string> &methods,
             const batch::BatchOptions &opt);

/**
 * SMARTS-style reference over many LLC sizes in ONE functional pass:
 * a shared L1 pair filters the stream into one warmed LLC per size; at
 * each detailed region, per-size copies of the warmed caches feed a
 * timed detailed simulation. Orders of magnitude cheaper than one full
 * SMARTS run per size, with the same curve shapes (figures 13/14).
 */
struct MultiSizeReference
{
    std::vector<std::uint64_t> sizes;
    std::vector<double> mpki;
    std::vector<double> cpi;
};

MultiSizeReference
multiSizeReference(const workload::TraceSource &master,
                   const sampling::RegionSchedule &schedule,
                   const cache::HierarchyConfig &base,
                   const std::vector<std::uint64_t> &sizes,
                   const cpu::DetailedSimConfig &sim_config);

/**
 * multiSizeReference through the persistent result cache: the curve is
 * stored as a batch::SizeCurve under a content key of (workload,
 * schedule, hierarchy, sim config, size list). The reference is the
 * most expensive part of figures 13/14; caching it makes their reruns
 * incremental.
 *
 * @param spec the trace spec @p master was built from (key identity)
 */
MultiSizeReference
cachedMultiSizeReference(const std::string &spec,
                         const workload::TraceSource &master,
                         const sampling::RegionSchedule &schedule,
                         const cache::HierarchyConfig &base,
                         const std::vector<std::uint64_t> &sizes,
                         const cpu::DetailedSimConfig &sim_config,
                         bool use_cache);

/**
 * DSE sweep results (core/dse.hh) through the persistent result
 * cache, one MethodResult per LLC size. A DSE point is keyed by the
 * base config *plus the full size list* (the shared Scout filter uses
 * the smallest LLC of the sweep, so a point is only reusable within
 * the same sweep). On any miss the whole sweep reruns — the shared
 * warm-up cannot be replayed per point — and every point is
 * (re)stored.
 */
std::vector<sampling::MethodResult>
cachedDsePoints(const std::string &spec,
                const workload::TraceSource &master,
                const core::DeloreanConfig &base,
                const std::vector<std::uint64_t> &sizes,
                bool use_cache);

/**
 * Resolve a trace spec (workload/trace_registry.hh) for a figure
 * binary: unknown schemes/names and malformed trace files are user
 * errors, reported via fatal().
 */
std::unique_ptr<workload::TraceSource>
makeTraceOrDie(const std::string &spec);

/**
 * Run one figure's per-workload body, converting any exception it
 * throws (e.g. TraceError from a recording shorter than the schedule)
 * into a fatal user error tagged with the workload spec — figure
 * binaries must report bad inputs, never std::terminate.
 */
void guarded(const std::string &spec, const std::function<void()> &body);

/** Heading in the output of each figure binary. */
void printHeading(const std::string &title, const std::string &paper_ref);

/** Format a size in MiB without trailing zeros. */
std::string mib(std::uint64_t bytes);

} // namespace delorean::bench

#endif // DELOREAN_BENCH_COMMON_HH
