/**
 * @file
 * Shared harness for the per-figure benchmark binaries.
 *
 * Every binary reproduces one table/figure of the paper and prints the
 * same rows/series the paper reports, plus `paper=` annotations with the
 * published values where available. Binaries accept:
 *
 *   --spacing N     region spacing in instructions (default 5,000,000)
 *   --regions N     number of detailed regions (default 10)
 *   --bench a,b,c   workload subset (default: all 24 SPEC-like
 *                   profiles); entries are trace specs
 *                   (workload/trace_registry.hh), so recorded traces
 *                   (file:PATH) and ChampSim traces (champsim:PATH)
 *                   drive any figure, e.g.
 *                   fig05_speed --bench bzip2,file:bzip2.dlt
 *   --quick         1,000,000-instruction spacing, for smoke runs
 *   --no-cache      ignore the sweep cache
 *
 * Environment: DELOREAN_SPACING, DELOREAN_QUICK=1, DELOREAN_BENCH.
 *
 * The 24-benchmark x 3-method sweep that figures 5-9 share is cached in
 * a TSV in the working directory keyed by its parameters, so each figure
 * binary after the first loads instead of recomputing.
 */

#ifndef DELOREAN_BENCH_COMMON_HH
#define DELOREAN_BENCH_COMMON_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/delorean.hh"
#include "sampling/coolsim.hh"
#include "sampling/metrics.hh"
#include "sampling/smarts.hh"
#include "workload/spec_profiles.hh"

namespace delorean::bench
{

/** Command-line / environment options shared by all figure binaries. */
struct Options
{
    unsigned regions = 10;
    InstCount spacing = 5'000'000;
    std::vector<std::string> benchmarks; //!< empty = all 24
    bool use_cache = true;

    static Options parse(int argc, char **argv);

    sampling::RegionSchedule schedule() const;

    /** Full DeLorean config (usable as MethodConfig) for an LLC size. */
    core::DeloreanConfig config(std::uint64_t llc_size,
                                bool prefetch = false) const;

    const std::vector<std::string> &benchmarkList() const;
};

/** Summary of one (benchmark, method) run — the cacheable subset. */
struct RunSummary
{
    std::string benchmark;
    std::string method;
    double cpi = 0.0;
    double mpki = 0.0;
    double mips = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t reuse_samples = 0;
    std::uint64_t traps = 0;
    std::uint64_t false_positives = 0;
    std::uint64_t keys_total = 0;
    std::uint64_t keys_explored = 0;
    std::uint64_t keys_unresolved = 0;
    double avg_explorers = 0.0;
    std::uint64_t keys_by_explorer[4] = {0, 0, 0, 0};

    static RunSummary from(const sampling::MethodResult &r);
};

/** The three methods' summaries for one benchmark. */
struct BenchmarkSweep
{
    RunSummary smarts;
    RunSummary coolsim;
    RunSummary delorean;
};

/**
 * Run (or load from cache) the full three-method sweep at @p llc_size
 * for the configured benchmarks.
 *
 * @param tag distinguishes variant sweeps (e.g. "pref") in the cache
 */
std::vector<BenchmarkSweep> runSweep(const Options &opt,
                                     std::uint64_t llc_size,
                                     bool prefetch = false,
                                     const std::string &tag = "");

/**
 * SMARTS-style reference over many LLC sizes in ONE functional pass:
 * a shared L1 pair filters the stream into one warmed LLC per size; at
 * each detailed region, per-size copies of the warmed caches feed a
 * timed detailed simulation. Orders of magnitude cheaper than one full
 * SMARTS run per size, with the same curve shapes (figures 13/14).
 */
struct MultiSizeReference
{
    std::vector<std::uint64_t> sizes;
    std::vector<double> mpki;
    std::vector<double> cpi;
};

MultiSizeReference
multiSizeReference(const workload::TraceSource &master,
                   const sampling::RegionSchedule &schedule,
                   const cache::HierarchyConfig &base,
                   const std::vector<std::uint64_t> &sizes,
                   const cpu::DetailedSimConfig &sim_config);

/**
 * Resolve a trace spec (workload/trace_registry.hh) for a figure
 * binary: unknown schemes/names and malformed trace files are user
 * errors, reported via fatal().
 */
std::unique_ptr<workload::TraceSource>
makeTraceOrDie(const std::string &spec);

/**
 * Run one figure's per-workload body, converting any exception it
 * throws (e.g. TraceError from a recording shorter than the schedule)
 * into a fatal user error tagged with the workload spec — figure
 * binaries must report bad inputs, never std::terminate.
 */
void guarded(const std::string &spec, const std::function<void()> &body);

/** Heading in the output of each figure binary. */
void printHeading(const std::string &title, const std::string &paper_ref);

/** Format a size in MiB without trailing zeros. */
std::string mib(std::uint64_t bytes);

} // namespace delorean::bench

#endif // DELOREAN_BENCH_COMMON_HH
