/**
 * @file
 * google-benchmark microbenchmarks for the library's hot components:
 * trace generation, cache simulation, reuse profiling, watchpoint
 * checks, StatStack construction/queries, and the OoO timing model.
 * These quantify the *real* (host) cost of the reproduction's
 * substrates, as opposed to the modeled costs in the figure benches.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cpu/ooo_core.hh"
#include "profiling/reuse_profiler.hh"
#include "profiling/watchpoint.hh"
#include "statmodel/statstack.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace delorean;

void
BM_TraceGeneration(benchmark::State &state)
{
    auto trace = workload::makeSpecTrace("bzip2");
    for (auto _ : state)
        benchmark::DoNotOptimize(trace->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_TraceClone(benchmark::State &state)
{
    auto trace = workload::makeSpecTrace("mcf");
    trace->skip(100000);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace->clone());
}
BENCHMARK(BM_TraceClone);

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig cfg;
    cfg.size = std::uint64_t(state.range(0)) * MiB;
    cfg.assoc = 8;
    cache::Cache cache(cfg);
    Rng rng(1);
    const std::uint64_t lines = cfg.lines() * 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(lines), false).hit);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8)->Arg(64);

void
BM_ReuseProfiler(benchmark::State &state)
{
    profiling::ReuseProfiler p;
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.observe(rng.nextBounded(1 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReuseProfiler);

void
BM_WatchpointCheck(benchmark::State &state)
{
    profiling::WatchpointEngine e;
    for (Addr l = 0; l < 64; ++l)
        e.watchLine(l * 64); // 64 watched pages
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(e.access(rng.nextBounded(1 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WatchpointCheck);

void
BM_StatStackConstruct(benchmark::State &state)
{
    statmodel::ReuseHistogram h;
    Rng rng(4);
    for (int i = 0; i < state.range(0); ++i)
        h.addReuse(1 + rng.nextBounded(10'000'000));
    for (auto _ : state) {
        statmodel::StatStack s(h);
        benchmark::DoNotOptimize(s.totalWeight());
    }
}
BENCHMARK(BM_StatStackConstruct)->Arg(1000)->Arg(100000);

void
BM_StatStackQuery(benchmark::State &state)
{
    statmodel::ReuseHistogram h;
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        h.addReuse(1 + rng.nextBounded(10'000'000));
    statmodel::StatStack s(h);
    std::uint64_t d = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.stackDistance(d));
        d = d * 7 % 10'000'000 + 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatStackQuery);

void
BM_OooDispatch(benchmark::State &state)
{
    cpu::OooCoreModel core{cpu::OooParams{}};
    core.reset();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core.dispatch(1.0, false, false, false));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OooDispatch);

} // namespace

BENCHMARK_MAIN();
