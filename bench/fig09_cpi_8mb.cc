/**
 * @file
 * Figure 9: CPI for DeLorean, CoolSim and SMARTS (reference) with an
 * 8 MiB LLC, plus the CPI error summary the paper quotes (CoolSim
 * ~9.1%, DeLorean ~3.5%).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading("CPI, 8 MiB LLC (SMARTS = reference)",
                        "Figure 9");
    std::printf("%-11s %9s %9s %9s %9s %9s\n", "benchmark", "SMARTS",
                "CoolSim", "DeLorean", "errC%", "errD%");

    double sum_ec = 0, sum_ed = 0;
    for (const auto &sw : sweeps) {
        const double ec = sampling::relativeErrorPct(sw.smarts.cpi,
                                                     sw.coolsim.cpi);
        const double ed = sampling::relativeErrorPct(sw.smarts.cpi,
                                                     sw.delorean.cpi);
        std::printf("%-11s %9.3f %9.3f %9.3f %9.1f %9.1f\n",
                    sw.smarts.benchmark.c_str(), sw.smarts.cpi,
                    sw.coolsim.cpi, sw.delorean.cpi, ec, ed);
        sum_ec += ec;
        sum_ed += ed;
    }
    const double n = double(sweeps.size());
    std::printf("\naverage CPI error: CoolSim %.1f%% (paper: 9.1%%), "
                "DeLorean %.1f%% (paper: 3.5%%)\n",
                sum_ec / n, sum_ed / n);
    return 0;
}
