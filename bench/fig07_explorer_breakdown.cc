/**
 * @file
 * Figure 7: key reuse distances as collected by the different
 * Explorers (stacked percentage per benchmark).
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading("Key reuse distances per Explorer (%)",
                        "Figure 7");
    std::printf("%-11s %8s %8s %8s %8s %10s\n", "benchmark", "E1", "E2",
                "E3", "E4", "keys");

    for (const auto &sw : sweeps) {
        const auto &d = sw.delorean;
        std::uint64_t total = 0;
        for (int k = 0; k < 4; ++k)
            total += d.keys_by_explorer[k];
        if (total == 0) {
            std::printf("%-11s %8s %8s %8s %8s %10llu\n",
                        d.benchmark.c_str(), "-", "-", "-", "-",
                        (unsigned long long)total);
            continue;
        }
        std::printf("%-11s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10llu\n",
                    d.benchmark.c_str(),
                    100.0 * double(d.keys_by_explorer[0]) / double(total),
                    100.0 * double(d.keys_by_explorer[1]) / double(total),
                    100.0 * double(d.keys_by_explorer[2]) / double(total),
                    100.0 * double(d.keys_by_explorer[3]) / double(total),
                    (unsigned long long)total);
    }
    std::printf("\npaper: most key reuses are collected by Explorer-1; "
                "deeper Explorers engage for long-reuse benchmarks\n"
                "(note: the scaled Explorer-1 horizon is floored above "
                "the lukewarm window, shifting some mass to E2 — see "
                "EXPERIMENTS.md)\n");
    return 0;
}
