/**
 * @file
 * Figure 5: normalized simulation speed for SMARTS, CoolSim and
 * DeLorean across the 24 SPEC-like benchmarks.
 */

#include <cstdio>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace delorean;
    const auto opt = bench::Options::parse(argc, argv);
    const auto sweeps = bench::runSweep(opt, 8 * MiB);

    bench::printHeading(
        "Normalized simulation speed (SMARTS = 1)", "Figure 5");
    std::printf("%-11s %9s %9s %9s %12s %12s\n", "benchmark", "SMARTS",
                "CoolSim", "DeLorean", "D/S", "D/C");

    double sum_mips_s = 0, sum_mips_c = 0, sum_mips_d = 0;
    double sum_norm_c = 0, sum_norm_d = 0, sum_dc = 0;
    for (const auto &sw : sweeps) {
        const double c = sw.smarts.wall_seconds / sw.coolsim.wall_seconds;
        const double d =
            sw.smarts.wall_seconds / sw.delorean.wall_seconds;
        std::printf("%-11s %9.2f %9.2f %9.2f %11.1fx %11.2fx\n",
                    sw.smarts.benchmark.c_str(), 1.0, c, d, d, d / c);
        sum_mips_s += sw.smarts.mips;
        sum_mips_c += sw.coolsim.mips;
        sum_mips_d += sw.delorean.mips;
        sum_norm_c += c;
        sum_norm_d += d;
        sum_dc += d / c;
    }
    const double n = double(sweeps.size());
    std::printf("%-11s %9.2f %9.2f %9.2f %11.1fx %11.2fx\n", "average",
                1.0, sum_norm_c / n, sum_norm_d / n, sum_norm_d / n,
                sum_dc / n);
    std::printf("\nabsolute speeds: SMARTS %.2f MIPS (paper: 1.3), "
                "CoolSim %.1f MIPS (paper: 21.9), DeLorean %.1f MIPS "
                "(paper: 126)\n",
                sum_mips_s / n, sum_mips_c / n, sum_mips_d / n);
    std::printf("average speedups: %.0fx vs SMARTS (paper: 96x), "
                "%.1fx vs CoolSim (paper: 5.7x)\n",
                sum_norm_d / n, sum_dc / n);
    return 0;
}
